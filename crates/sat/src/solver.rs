//! The CDCL search engine.
//!
//! Clause storage is a flat arena ([`crate::alloc::ClauseAllocator`]):
//! every clause of three or more literals lives at a `u32` offset in one
//! contiguous buffer, and freed clauses are compacted away by a copying
//! garbage collector once a fifth of the arena is dead. Two-literal
//! clauses never touch the arena — they are inlined into the watch
//! lists, so binary propagation (the bulk of Tseitin-encoded problems)
//! resolves from the watcher alone without a single clause lookup.

use crate::alloc::ClauseAllocator;
use crate::budget::{ArmedBudget, StopReason};
use crate::heap::ActivityHeap;
use crate::preprocess::{ElimRecord, PreprocessOutcome, Preprocessor};
use crate::share::{ClausePool, ShareCtx, SharedClause, MAX_SHARED_GLUE, MAX_SHARED_LITS};
use crate::{ClauseRef, LBool, Lit, Var};
use std::fmt;
use std::sync::Arc;

const VAR_RESCALE_LIMIT: f64 = 1e100;
const VAR_RESCALE_FACTOR: f64 = 1e-100;
const CLA_RESCALE_LIMIT: f64 = 1e20;
const CLA_RESCALE_FACTOR: f64 = 1e-20;

/// Imported peer clauses wait in a bounded buffer until the search is
/// back at decision level 0; beyond this many pending clauses the drain
/// stops picking up more (losing shared clauses is always sound).
const MAX_PENDING_IMPORTS: usize = 4096;

/// Smoothing factors of the fast/slow literal-block-distance averages
/// behind glucose-style restarts.
const LBD_EMA_FAST: f64 = 1.0 / 32.0;
const LBD_EMA_SLOW: f64 = 1.0 / 4096.0;

/// Restart schedule of the CDCL search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RestartStrategy {
    /// Luby-sequence restarts: run `i` allows `unit · luby(base, i)`
    /// conflicts. The classic default is `base = 2`, `unit = 100`.
    Luby {
        /// Growth base of the Luby sequence.
        base: f64,
        /// Conflicts multiplier applied to each sequence element.
        unit: u64,
    },
    /// Glucose-style adaptive restarts: restart once the fast
    /// literal-block-distance average exceeds the slow average by
    /// `margin`, but never before `min_conflicts` conflicts into the
    /// current run.
    Glucose {
        /// Fast-over-slow LBD ratio that triggers a restart.
        margin: f64,
        /// Minimum conflicts per run before the trigger is consulted.
        min_conflicts: u64,
    },
    /// Never restart.
    Never,
}

/// Decision-polarity policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseMode {
    /// Branch to the polarity the variable last held (phase saving).
    Saved,
    /// Always branch negative (the pre-phase-saving MiniSat default).
    AlwaysFalse,
    /// Always branch positive.
    AlwaysTrue,
}

/// Tunable search parameters — the diversification surface raced by the
/// portfolio backend. [`SolverConfig::default`] reproduces the solver's
/// historical hard-coded behaviour exactly (same restart schedule, same
/// decay, no randomization), so a default-configured solver is
/// search-identical to every earlier release.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverConfig {
    /// Restart schedule.
    pub restart: RestartStrategy,
    /// EVSIDS activity decay: the activity increment grows by
    /// `1 / var_decay` per conflict. Closer to 1 = longer memory.
    pub var_decay: f64,
    /// Decision-polarity policy.
    pub phase: PhaseMode,
    /// Probability of overriding the polarity policy with a random
    /// polarity at a decision. 0 never consults the RNG.
    pub random_polarity_freq: f64,
    /// Probability of branching on a uniformly random unassigned
    /// variable instead of the activity-heap maximum. 0 never consults
    /// the RNG.
    pub random_var_freq: f64,
    /// Seed of the deterministic xorshift RNG behind the two
    /// frequencies above (runs are reproducible for a fixed config).
    pub seed: u64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            restart: RestartStrategy::Luby {
                base: 2.0,
                unit: 100,
            },
            var_decay: 0.95,
            phase: PhaseMode::Saved,
            random_polarity_freq: 0.0,
            random_var_freq: 0.0,
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl SolverConfig {
    /// The deterministic diversification palette of portfolio worker
    /// `i`.
    ///
    /// Worker 0 always runs the default configuration, so a one-worker
    /// portfolio searches identically to the plain CDCL backend.
    /// Workers 1–7 vary the restart schedule, activity decay, polarity
    /// policy, and randomization; beyond 8 the palette repeats with
    /// fresh RNG seeds, which still diverges its randomized members.
    #[must_use]
    pub fn diversified(i: usize) -> Self {
        let seed = splitmix64(0x00A0_9EED ^ i as u64);
        let base = SolverConfig {
            seed,
            ..SolverConfig::default()
        };
        match i % 8 {
            1 => SolverConfig {
                restart: RestartStrategy::Glucose {
                    margin: 1.25,
                    min_conflicts: 100,
                },
                var_decay: 0.85,
                ..base
            },
            2 => SolverConfig {
                restart: RestartStrategy::Luby {
                    base: 2.0,
                    unit: 512,
                },
                phase: PhaseMode::AlwaysTrue,
                ..base
            },
            3 => SolverConfig {
                var_decay: 0.99,
                random_polarity_freq: 0.02,
                ..base
            },
            4 => SolverConfig {
                restart: RestartStrategy::Luby {
                    base: 3.0,
                    unit: 100,
                },
                random_var_freq: 0.02,
                ..base
            },
            5 => SolverConfig {
                restart: RestartStrategy::Glucose {
                    margin: 1.4,
                    min_conflicts: 50,
                },
                var_decay: 0.75,
                phase: PhaseMode::AlwaysFalse,
                ..base
            },
            6 => SolverConfig {
                restart: RestartStrategy::Luby {
                    base: 2.0,
                    unit: 32,
                },
                var_decay: 0.9,
                random_polarity_freq: 0.05,
                ..base
            },
            7 => SolverConfig {
                restart: RestartStrategy::Luby {
                    base: 2.0,
                    unit: 1024,
                },
                phase: PhaseMode::AlwaysTrue,
                random_var_freq: 0.05,
                ..base
            },
            _ => base,
        }
    }
}

/// SplitMix64: seeds the per-config RNG streams.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic xorshift64* PRNG behind the randomized decision
/// policies (no external dependency, reproducible across platforms).
#[derive(Debug, Clone)]
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64(seed | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    #[allow(clippy::cast_precision_loss)]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with
    /// [`Solver::model_value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// A resource limit (conflicts, wall clock, propagations, memory) was
    /// exhausted or the solve was cancelled before a verdict was reached;
    /// [`Solver::stop_reason`] says which.
    Unknown,
}

/// Cumulative solver statistics, exposed for the benchmark harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of unit propagations performed.
    pub propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learned clauses currently in the database.
    pub learnts: u64,
    /// Number of learned clauses deleted by database reduction.
    pub deleted: u64,
    /// Number of propagations resolved by the inline binary-clause fast
    /// path (no arena access).
    pub binary_props: u64,
    /// Number of arena garbage collections performed.
    pub gc_runs: u64,
    /// Current clause-arena size in bytes (live + not-yet-collected).
    pub arena_bytes: u64,
    /// Clauses removed by subsumption plus literals removed by
    /// self-subsuming resolution during preprocessing.
    pub subsumed: u64,
    /// Variables removed by bounded variable elimination (cumulative;
    /// reactivated variables are not subtracted).
    pub eliminated_vars: u64,
    /// Total time spent inside the CNF preprocessor, in microseconds.
    pub preprocess_micros: u64,
    /// Learnt clauses exported to portfolio peers (clause sharing).
    pub shared_exported: u64,
    /// Peer clauses imported and installed (clause sharing).
    pub shared_imported: u64,
    /// Conflicts spent by losing portfolio workers — search effort that
    /// did not produce the verdict.
    pub wasted_conflicts: u64,
    /// Learnt clauses imported from a persisted warm-start pack and
    /// installed as redundant clauses.
    pub learnt_imported: u64,
    /// Warm-start learnt clauses rejected instead of installed (variable
    /// out of range, or the whole pack's frame fingerprint mismatched).
    pub learnt_discarded: u64,
    /// Worker index that produced the verdict of the most recent
    /// portfolio race, or `None` outside portfolio solving.
    pub portfolio_winner: Option<u32>,
}

impl SolverStats {
    /// Folds another solver's statistics into this one. Counters add up;
    /// `arena_bytes` (a point-in-time gauge) takes the maximum. Used to
    /// aggregate per-obligation solver runs into one report.
    pub fn absorb(&mut self, other: &SolverStats) {
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.conflicts += other.conflicts;
        self.restarts += other.restarts;
        self.learnts += other.learnts;
        self.deleted += other.deleted;
        self.binary_props += other.binary_props;
        self.gc_runs += other.gc_runs;
        self.arena_bytes = self.arena_bytes.max(other.arena_bytes);
        self.subsumed += other.subsumed;
        self.eliminated_vars += other.eliminated_vars;
        self.preprocess_micros += other.preprocess_micros;
        self.shared_exported += other.shared_exported;
        self.shared_imported += other.shared_imported;
        self.wasted_conflicts += other.wasted_conflicts;
        self.learnt_imported += other.learnt_imported;
        self.learnt_discarded += other.learnt_discarded;
        if other.portfolio_winner.is_some() {
            self.portfolio_winner = other.portfolio_winner;
        }
    }
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decisions={} propagations={} conflicts={} restarts={} learnts={} deleted={} \
             binary_props={} gc_runs={} arena_bytes={} subsumed={} eliminated_vars={} \
             preprocess_micros={} shared_exported={} shared_imported={} wasted_conflicts={} \
             learnt_imported={} learnt_discarded={} portfolio_winner={}",
            self.decisions,
            self.propagations,
            self.conflicts,
            self.restarts,
            self.learnts,
            self.deleted,
            self.binary_props,
            self.gc_runs,
            self.arena_bytes,
            self.subsumed,
            self.eliminated_vars,
            self.preprocess_micros,
            self.shared_exported,
            self.shared_imported,
            self.wasted_conflicts,
            self.learnt_imported,
            self.learnt_discarded,
            self.portfolio_winner
                .map_or_else(|| "-".to_string(), |w| w.to_string()),
        )
    }
}

/// Why a variable is assigned: the antecedent of a propagation.
///
/// Binary clauses propagate straight from the watch lists, so their
/// antecedent is the one other literal rather than an arena reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reason {
    /// Implied by an arena clause (the implied literal is at position 0).
    Clause(ClauseRef),
    /// Implied by the binary clause `(implied ∨ other)`; `other` is false.
    Binary(Lit),
}

/// A conflicting clause found by propagation.
#[derive(Debug, Clone, Copy)]
enum Conflict {
    Clause(ClauseRef),
    Binary(Lit, Lit),
}

/// One entry of a watch list.
///
/// `cref == None` marks an inlined binary clause `(¬watched ∨ blocker)`:
/// the watcher carries the whole clause, so propagation never reads the
/// arena for it. For longer clauses `blocker` is a cached literal whose
/// truth proves the clause satisfied without loading it.
#[derive(Debug, Clone, Copy)]
struct Watcher {
    blocker: Lit,
    cref: Option<ClauseRef>,
}

/// Incremental CDCL SAT solver.
///
/// See the [crate-level documentation](crate) for the feature list and a
/// usage example. A single instance can be reused across many
/// [`Solver::solve_with`] calls with different assumptions; clauses may be
/// added between calls (the intended BMC workflow).
#[derive(Debug, Clone)]
pub struct Solver {
    ca: ClauseAllocator,
    /// Live irredundant arena clauses (for GC relocation).
    clauses: Vec<ClauseRef>,
    /// Live learnt arena clauses (reduction candidates).
    learnts: Vec<ClauseRef>,
    /// Binary clauses attached so far (they live only in watch lists).
    num_binary: usize,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<Option<Reason>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    heap: ActivityHeap,
    phase: Vec<bool>,
    cla_inc: f64,
    cla_decay: f64,
    ok: bool,
    model: Vec<bool>,
    has_model: bool,
    seen: Vec<bool>,
    max_learnts: f64,
    conflict_budget: Option<u64>,
    armed: ArmedBudget,
    stop_reason: Option<StopReason>,
    /// Coarse step counter: the armed budget is only inspected every
    /// [`BUDGET_CHECK_INTERVAL`] conflicts/decisions so `Instant::now()`
    /// stays off the propagation hot path.
    tick: u64,
    /// `(conflicts, propagations)` at the start of the current solve
    /// call; effort caps are enforced per call, not cumulatively.
    solve_base: (u64, u64),
    /// Tunable search parameters (restart schedule, activity decay,
    /// polarity policy, randomization); see [`SolverConfig`].
    config: SolverConfig,
    /// Deterministic RNG behind the randomized decision policies; never
    /// consulted while both `config` frequencies are zero.
    rng: XorShift64,
    /// Fast/slow exponential moving averages of learnt-clause glue,
    /// driving glucose-style restarts (and the clause-sharing filter).
    lbd_fast: f64,
    lbd_slow: f64,
    /// Per-decision-level stamps for O(|clause|) glue computation.
    glue_stamp: Vec<u64>,
    glue_tick: u64,
    /// Clause-sharing pool membership (portfolio workers only).
    share: Option<ShareCtx>,
    /// Peer clauses picked up at the budget tick, waiting for decision
    /// level 0 to be installed.
    pending_import: Vec<SharedClause>,
    /// Scope label baked into this solver's metric names (portfolio
    /// worker id, property class); `None` records into the
    /// process-global series.
    metrics_scope: Option<String>,
    decision_heuristic: bool,
    stats: SolverStats,
    num_learnts: u64,
    /// Whether [`Solver::preprocess`] runs inside solve calls.
    preprocess_enabled: bool,
    /// Variables the preprocessor must never eliminate (external
    /// interface: assumption carriers, frame boundaries).
    frozen: Vec<bool>,
    /// Variables currently eliminated by the preprocessor. They carry no
    /// clauses; their model values are reconstructed by
    /// [`Solver::extend_model`], and adding a clause over one transparently
    /// reactivates it.
    eliminated: Vec<bool>,
    /// For an eliminated variable, its index into `elim_stack`.
    elim_index: Vec<u32>,
    /// Elimination records in elimination order (model reconstruction
    /// walks it in reverse).
    elim_stack: Vec<ElimRecord>,
    /// Clause count right after the last preprocessor run; gates when the
    /// next run is worthwhile.
    last_simp_clauses: usize,
    /// Observability sampling state; only touched at the coarse budget
    /// tick, and only when `aqed_obs::enabled()`.
    obs: ObsState,
}

/// CDCL progress sampling: resolved metric handles plus the previous
/// sample point, so each tick records deltas (conflict rate,
/// per-propagation latency) instead of cumulative totals.
#[derive(Debug, Clone, Default)]
struct ObsState {
    handles: Option<ObsHandles>,
    /// `(wall clock, conflicts, propagations)` at the previous sample.
    last: Option<(std::time::Instant, u64, u64)>,
    samples: u64,
}

#[derive(Debug, Clone)]
struct ObsHandles {
    /// Conflicts per second between consecutive budget ticks.
    conflict_rate: aqed_obs::metrics::Histogram,
    /// Mean nanoseconds per propagation between consecutive ticks.
    prop_latency: aqed_obs::metrics::Histogram,
}

/// How many search steps (conflicts + decisions) pass between armed
/// budget inspections.
const BUDGET_CHECK_INTERVAL: u64 = 64;

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

/// Truth value of `l` under the current assignment (free function so
/// propagation can hold a clause borrow at the same time).
#[inline]
fn lit_value(assigns: &[LBool], l: Lit) -> LBool {
    match assigns[l.var().index()] {
        LBool::Undef => LBool::Undef,
        LBool::True => {
            if l.is_positive() {
                LBool::True
            } else {
                LBool::False
            }
        }
        LBool::False => {
            if l.is_positive() {
                LBool::False
            } else {
                LBool::True
            }
        }
    }
}

impl Solver {
    /// Creates an empty solver with the default configuration.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(SolverConfig::default())
    }

    /// Creates an empty solver with the given search configuration.
    #[must_use]
    pub fn with_config(config: SolverConfig) -> Self {
        let rng = XorShift64::new(config.seed);
        Solver {
            ca: ClauseAllocator::new(),
            clauses: Vec::new(),
            learnts: Vec::new(),
            num_binary: 0,
            watches: Vec::new(),
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            heap: ActivityHeap::new(),
            phase: Vec::new(),
            cla_inc: 1.0,
            cla_decay: 0.999,
            ok: true,
            model: Vec::new(),
            has_model: false,
            seen: Vec::new(),
            max_learnts: 0.0,
            conflict_budget: None,
            armed: ArmedBudget::unlimited(),
            stop_reason: None,
            tick: 0,
            solve_base: (0, 0),
            config,
            rng,
            lbd_fast: 0.0,
            lbd_slow: 0.0,
            // Index 0 covers decision level 0; `new_var` keeps the vector
            // one entry ahead of the deepest possible level.
            glue_stamp: vec![0],
            glue_tick: 0,
            share: None,
            pending_import: Vec::new(),
            metrics_scope: None,
            decision_heuristic: true,
            stats: SolverStats::default(),
            num_learnts: 0,
            preprocess_enabled: false,
            frozen: Vec::new(),
            eliminated: Vec::new(),
            elim_index: Vec::new(),
            elim_stack: Vec::new(),
            last_simp_clauses: 0,
            obs: ObsState::default(),
        }
    }

    /// The active search configuration.
    #[must_use]
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Replaces the search configuration (reseeding the decision RNG).
    /// Applies to subsequent solve calls.
    pub fn set_config(&mut self, config: SolverConfig) {
        self.rng = XorShift64::new(config.seed);
        self.config = config;
    }

    /// Joins a clause-sharing pool as worker `id`: short, low-glue learnt
    /// clauses are exported to the pool and peer clauses are picked up at
    /// the coarse budget tick, then installed at decision level 0. All
    /// participants must share one variable numbering (the portfolio
    /// backend keeps workers variable-synchronized before each solve).
    pub fn set_sharing(&mut self, pool: Arc<ClausePool>, id: usize) {
        self.share = Some(ShareCtx::new(pool, id));
    }

    /// Leaves the clause-sharing pool. Already-imported clauses remain
    /// (they are implied, so keeping them is always sound).
    pub fn clear_sharing(&mut self) {
        self.share = None;
    }

    /// Snapshots the surviving learnt-clause core for warm-starting a
    /// future solver over an *identical* CNF: the live (non-deleted)
    /// arena learnts, highest-activity first, capped at `max_len`
    /// literals per clause and `max_count` clauses. Binary learnts live
    /// inlined in the watch lists rather than the arena and are not
    /// exported; unit learnts are level-0 trail facts, likewise skipped.
    ///
    /// The returned clauses are implied by the clauses added so far, so
    /// they are only sound to re-add to a solver holding an identical
    /// clause set (see [`Solver::import_learnts`]).
    #[must_use]
    pub fn export_learnts(&self, max_len: usize, max_count: usize) -> Vec<Vec<Lit>> {
        let mut refs: Vec<ClauseRef> = self
            .learnts
            .iter()
            .copied()
            .filter(|&c| !self.ca.is_deleted(c) && self.ca.size(c) <= max_len)
            .collect();
        refs.sort_by(|&a, &b| {
            self.ca
                .activity(b)
                .partial_cmp(&self.ca.activity(a))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        refs.truncate(max_count);
        refs.iter().map(|&c| self.ca.lits(c).to_vec()).collect()
    }

    /// Installs warm-start learnt clauses exported by a previous run
    /// over an identical CNF (see [`Solver::export_learnts`]). Each
    /// clause is re-simplified against the level-0 trail exactly like a
    /// portfolio import; because it is implied by the (identical) clause
    /// set, installation preserves both verdicts and models — even for
    /// clauses mentioning variables this solver's preprocessor
    /// eliminated. A clause naming a variable this solver has not
    /// created is discarded instead: the caller's CNF-identity guarantee
    /// failed for it.
    ///
    /// # Panics
    ///
    /// Panics if called mid-search (the public API only reaches decision
    /// level 0 between solves).
    pub fn import_learnts(&mut self, clauses: &[Vec<Lit>]) {
        assert_eq!(
            self.decision_level(),
            0,
            "import_learnts must run between solves"
        );
        for c in clauses {
            if !self.ok {
                return;
            }
            if c.is_empty() || c.iter().any(|l| l.var().index() >= self.num_vars()) {
                self.stats.learnt_discarded += 1;
                continue;
            }
            self.stats.learnt_imported += 1;
            self.add_learnt_vec(c.clone());
        }
    }

    /// Sets the scope label baked into this solver's metric names
    /// (recorded as `name{scope}`), so portfolio workers and property
    /// classes get separate histogram series. `None` restores the
    /// process-global series.
    pub fn set_metrics_scope(&mut self, scope: Option<String>) {
        if self.metrics_scope != scope {
            self.metrics_scope = scope;
            self.obs.handles = None;
        }
    }

    /// Number of variables created so far.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of clauses currently in the database (original + learned,
    /// excluding deleted; binary clauses included).
    #[must_use]
    pub fn num_clauses(&self) -> usize {
        self.clauses.len() + self.learnts.len() + self.num_binary
    }

    /// Cumulative search statistics.
    #[must_use]
    pub fn stats(&self) -> SolverStats {
        let mut s = self.stats;
        s.arena_bytes = self.ca.bytes() as u64;
        s
    }

    /// Limits the next [`Solver::solve`]/[`Solver::solve_with`] call to at
    /// most `budget` conflicts; `None` removes the limit. When the budget
    /// is exhausted the call returns [`SolveResult::Unknown`].
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    /// Installs an armed resource budget governing all following solve
    /// calls. The search loop polls it at a coarse interval; tripping any
    /// limit (deadline, caps, cancellation) makes the solve return
    /// [`SolveResult::Unknown`] with [`Solver::stop_reason`] set.
    pub fn set_budget(&mut self, armed: ArmedBudget) {
        self.armed = armed;
    }

    /// Why the most recent solve call returned [`SolveResult::Unknown`],
    /// or `None` if it reached a verdict (or no solve has run yet).
    #[must_use]
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.stop_reason
    }

    /// Checks the armed budget against this call's effort counters.
    fn check_armed(&self) -> Option<StopReason> {
        let conflicts = self.stats.conflicts - self.solve_base.0;
        let propagations = self.stats.propagations - self.solve_base.1;
        self.armed
            .check(conflicts, propagations, self.ca.bytes() as u64)
    }

    /// Enables or disables restarts (ablation hook; enabled by default).
    /// Shorthand for setting [`SolverConfig::restart`] to the default
    /// Luby schedule or [`RestartStrategy::Never`].
    pub fn set_restarts_enabled(&mut self, enabled: bool) {
        self.config.restart = if enabled {
            SolverConfig::default().restart
        } else {
            RestartStrategy::Never
        };
    }

    /// Enables or disables the VSIDS decision heuristic (ablation hook;
    /// enabled by default). When disabled, decisions pick the lowest
    /// unassigned variable index.
    pub fn set_decision_heuristic(&mut self, enabled: bool) {
        self.decision_heuristic = enabled;
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(u32::try_from(self.assigns.len()).expect("too many variables"));
        self.assigns.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.model.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.frozen.push(false);
        self.eliminated.push(false);
        self.elim_index.push(u32::MAX);
        self.glue_stamp.push(0);
        self.heap.grow(self.assigns.len());
        self.heap.insert(v.index(), &self.activity);
        v
    }

    /// Creates `n` fresh variables and returns them in order.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    #[inline]
    fn value_lit(&self, l: Lit) -> LBool {
        lit_value(&self.assigns, l)
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause. Returns `false` if the solver is now known
    /// unsatisfiable at the top level (the clause or its unit consequences
    /// contradict previously added clauses).
    ///
    /// Duplicate literals are removed, tautologies are ignored, and
    /// literals already false at level 0 are dropped.
    ///
    /// # Panics
    ///
    /// Panics if called while the solver is not at decision level 0
    /// (i.e. from inside a search callback — not possible through the
    /// public API) or if a literal's variable was not created by this
    /// solver.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        assert_eq!(self.decision_level(), 0, "clauses must be added at level 0");
        if !self.ok {
            return false;
        }
        let ls: Vec<Lit> = lits.into_iter().collect();
        for &l in &ls {
            assert!(
                l.var().index() < self.num_vars(),
                "literal {l} uses an unknown variable"
            );
        }
        self.reactivate_touched(&ls);
        if !self.ok {
            return false;
        }
        self.add_clause_vec(ls)
    }

    /// [`Solver::add_clause`] after the external checks: simplifies
    /// against the level-0 trail and commits. Must not contain eliminated
    /// variables (callers reactivate first); this is also the re-entry
    /// path reactivation and rebuilding use, so it must not reactivate
    /// itself.
    fn add_clause_vec(&mut self, mut ls: Vec<Lit>) -> bool {
        ls.sort_unstable();
        ls.dedup();
        // Tautology / level-0 simplification.
        let mut out: Vec<Lit> = Vec::with_capacity(ls.len());
        for (i, &l) in ls.iter().enumerate() {
            if i + 1 < ls.len() && ls[i + 1] == !l {
                return true; // l ∨ ¬l: tautology
            }
            match self.value_lit(l) {
                LBool::True if self.level[l.var().index()] == 0 => return true,
                LBool::False if self.level[l.var().index()] == 0 => {}
                _ => out.push(l),
            }
        }
        self.commit_simplified(&out)
    }

    /// Adds a two-literal clause without heap allocation — the dominant
    /// clause shape emitted by Tseitin bit-blasting. Semantics are
    /// identical to [`Solver::add_clause`] on the same literals.
    ///
    /// # Panics
    ///
    /// As for [`Solver::add_clause`].
    pub fn add_binary(&mut self, a: Lit, b: Lit) -> bool {
        self.add_small(&mut [a, b])
    }

    /// Adds a three-literal clause without heap allocation (the other
    /// clause shape of Tseitin gate encodings). Semantics are identical
    /// to [`Solver::add_clause`] on the same literals.
    ///
    /// # Panics
    ///
    /// As for [`Solver::add_clause`].
    pub fn add_ternary(&mut self, a: Lit, b: Lit, c: Lit) -> bool {
        self.add_small(&mut [a, b, c])
    }

    /// Shared allocation-free path for 2- and 3-literal clauses:
    /// simplifies on the stack, then dispatches to the right store.
    fn add_small(&mut self, lits: &mut [Lit]) -> bool {
        assert_eq!(self.decision_level(), 0, "clauses must be added at level 0");
        if !self.ok {
            return false;
        }
        for &l in lits.iter() {
            assert!(
                l.var().index() < self.num_vars(),
                "literal {l} uses an unknown variable"
            );
        }
        self.reactivate_touched(lits);
        if !self.ok {
            return false;
        }
        lits.sort_unstable();
        let mut out = [Lit(0); 3];
        let mut n = 0usize;
        for i in 0..lits.len() {
            let l = lits[i];
            if i + 1 < lits.len() {
                if lits[i + 1] == l {
                    continue; // duplicate
                }
                if lits[i + 1] == !l {
                    return true; // l ∨ ¬l: tautology (adjacent when sorted)
                }
            }
            match self.value_lit(l) {
                LBool::True if self.level[l.var().index()] == 0 => return true,
                LBool::False if self.level[l.var().index()] == 0 => {}
                _ => {
                    out[n] = l;
                    n += 1;
                }
            }
        }
        self.commit_simplified(&out[..n])
    }

    /// Stores an already-simplified clause (no duplicates, tautologies,
    /// or level-0-false literals).
    fn commit_simplified(&mut self, out: &[Lit]) -> bool {
        match out.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(out[0], None);
                self.ok = self.propagate().is_none();
                self.ok
            }
            2 => {
                self.attach_binary(out[0], out[1], false);
                true
            }
            _ => {
                self.alloc_clause(out, false);
                true
            }
        }
    }

    /// Allocates an arena clause (three or more literals) and attaches
    /// its watchers.
    fn alloc_clause(&mut self, lits: &[Lit], learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 3);
        let cref = self.ca.alloc(lits, learnt);
        if learnt {
            self.learnts.push(cref);
            self.num_learnts += 1;
            self.stats.learnts = self.num_learnts;
        } else {
            self.clauses.push(cref);
        }
        self.attach(cref);
        cref
    }

    /// Attaches a binary clause `(a ∨ b)` by inlining it into both watch
    /// lists; no arena storage is used.
    fn attach_binary(&mut self, a: Lit, b: Lit, learnt: bool) {
        self.watches[(!a).index()].push(Watcher {
            blocker: b,
            cref: None,
        });
        self.watches[(!b).index()].push(Watcher {
            blocker: a,
            cref: None,
        });
        self.num_binary += 1;
        if learnt {
            self.num_learnts += 1;
            self.stats.learnts = self.num_learnts;
        }
    }

    fn attach(&mut self, cref: ClauseRef) {
        let (l0, l1) = {
            let lits = self.ca.lits(cref);
            (lits[0], lits[1])
        };
        self.watches[(!l0).index()].push(Watcher {
            blocker: l1,
            cref: Some(cref),
        });
        self.watches[(!l1).index()].push(Watcher {
            blocker: l0,
            cref: Some(cref),
        });
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: Option<Reason>) {
        debug_assert_eq!(self.value_lit(l), LBool::Undef);
        let v = l.var().index();
        self.assigns[v] = LBool::from_bool(l.is_positive());
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause if any.
    ///
    /// Watch lists are traversed in place: kept watchers are never
    /// rewritten, clauses that migrate to a new watch are removed with an
    /// O(1) `swap_remove` (watch-list order is irrelevant), and
    /// lazily-detached (deleted) clauses drop their watchers the same way.
    fn propagate(&mut self) -> Option<Conflict> {
        // Outcome of inspecting one non-binary clause, computed under a
        // single arena borrow per visit.
        enum Visit {
            Satisfied(Lit),
            Moved(Lit, Lit),
            Unit(Lit),
            Conflicting,
        }
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            let pi = p.index();
            let mut i = 0;
            while i < self.watches[pi].len() {
                let w = self.watches[pi][i];
                let Some(cref) = w.cref else {
                    // Binary fast path: the whole clause is
                    // (false_lit ∨ blocker), carried by the watcher.
                    match lit_value(&self.assigns, w.blocker) {
                        LBool::True => {}
                        LBool::Undef => {
                            self.stats.binary_props += 1;
                            self.unchecked_enqueue(w.blocker, Some(Reason::Binary(false_lit)));
                        }
                        LBool::False => {
                            self.qhead = self.trail.len();
                            return Some(Conflict::Binary(false_lit, w.blocker));
                        }
                    }
                    i += 1;
                    continue;
                };
                if self.ca.is_deleted(cref) {
                    self.watches[pi].swap_remove(i); // lazily detached
                    continue;
                }
                // Fast path: blocker already true.
                if lit_value(&self.assigns, w.blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                let visit = {
                    let assigns = &self.assigns;
                    let lits = self.ca.lits_mut(cref);
                    // Normalize: ensure false_lit is at position 1.
                    if lits[0] == false_lit {
                        lits.swap(0, 1);
                    }
                    debug_assert_eq!(lits[1], false_lit);
                    let first = lits[0];
                    if first != w.blocker && lit_value(assigns, first) == LBool::True {
                        Visit::Satisfied(first)
                    } else {
                        // Look for a new literal to watch.
                        let mut moved = None;
                        for k in 2..lits.len() {
                            if lit_value(assigns, lits[k]) != LBool::False {
                                lits.swap(1, k);
                                moved = Some(lits[1]);
                                break;
                            }
                        }
                        match moved {
                            Some(lk) => Visit::Moved(lk, first),
                            // No new watch: clause is unit or conflicting.
                            None if lit_value(assigns, first) == LBool::False => Visit::Conflicting,
                            None => Visit::Unit(first),
                        }
                    }
                };
                match visit {
                    Visit::Satisfied(first) => {
                        self.watches[pi][i].blocker = first;
                        i += 1;
                    }
                    Visit::Moved(lk, first) => {
                        // `lk` is non-false while `false_lit` is false, so
                        // the push never lands back on p's own list.
                        self.watches[pi].swap_remove(i);
                        self.watches[(!lk).index()].push(Watcher {
                            blocker: first,
                            cref: Some(cref),
                        });
                    }
                    Visit::Unit(first) => {
                        self.unchecked_enqueue(first, Some(Reason::Clause(cref)));
                        i += 1;
                    }
                    Visit::Conflicting => {
                        self.qhead = self.trail.len();
                        return Some(Conflict::Clause(cref));
                    }
                }
            }
        }
        None
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > VAR_RESCALE_LIMIT {
            for a in self.activity.iter_mut() {
                *a *= VAR_RESCALE_FACTOR;
            }
            self.var_inc *= VAR_RESCALE_FACTOR;
            self.heap.rebuild(&self.activity);
        }
        self.heap.update(v, &self.activity);
    }

    fn decay_var_activity(&mut self) {
        self.var_inc /= self.config.var_decay;
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        if !self.ca.is_learnt(cref) {
            return;
        }
        let bumped = self.ca.activity(cref) + self.cla_inc as f32;
        self.ca.set_activity(cref, bumped);
        if f64::from(bumped) > CLA_RESCALE_LIMIT {
            for idx in 0..self.learnts.len() {
                let c = self.learnts[idx];
                let a = self.ca.activity(c);
                self.ca.set_activity(c, a * CLA_RESCALE_FACTOR as f32);
            }
            self.cla_inc *= CLA_RESCALE_FACTOR;
        }
    }

    fn decay_clause_activity(&mut self) {
        self.cla_inc /= self.cla_decay;
    }

    /// Processes one literal of a conflict-side clause during analysis.
    fn analyze_visit(&mut self, q: Lit, learnt: &mut Vec<Lit>, counter: &mut usize) {
        let v = q.var().index();
        if !self.seen[v] && self.level[v] > 0 {
            self.seen[v] = true;
            self.bump_var(v);
            if self.level[v] >= self.decision_level() {
                *counter += 1;
            } else {
                learnt.push(q);
            }
        }
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, conflict: Conflict) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for UIP
        let mut counter = 0usize;
        let mut index = self.trail.len();

        match conflict {
            Conflict::Clause(cref) => {
                self.bump_clause(cref);
                for k in 0..self.ca.size(cref) {
                    let q = self.ca.lit(cref, k);
                    self.analyze_visit(q, &mut learnt, &mut counter);
                }
            }
            Conflict::Binary(a, b) => {
                self.analyze_visit(a, &mut learnt, &mut counter);
                self.analyze_visit(b, &mut learnt, &mut counter);
            }
        }

        let uip = loop {
            // Walk the trail backwards to the next marked literal.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            let v = lit.var().index();
            self.seen[v] = false;
            counter -= 1;
            if counter == 0 {
                break lit;
            }
            match self.reason[v].expect("non-decision literal has a reason") {
                Reason::Clause(cref) => {
                    self.bump_clause(cref);
                    // Position 0 is the implied literal (`lit`): skip it.
                    for k in 1..self.ca.size(cref) {
                        let q = self.ca.lit(cref, k);
                        self.analyze_visit(q, &mut learnt, &mut counter);
                    }
                }
                Reason::Binary(other) => self.analyze_visit(other, &mut learnt, &mut counter),
            }
        };
        learnt[0] = !uip;

        // Clause minimization: drop literals implied by the rest.
        let mut minimized = vec![learnt[0]];
        for &l in &learnt[1..] {
            if !self.literal_redundant(l) {
                minimized.push(l);
            }
        }
        // Clear seen flags.
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }

        // Find backjump level: the max level among non-asserting literals.
        let bt = if minimized.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..minimized.len() {
                if self.level[minimized[i].var().index()]
                    > self.level[minimized[max_i].var().index()]
                {
                    max_i = i;
                }
            }
            minimized.swap(1, max_i);
            self.level[minimized[1].var().index()]
        };
        (minimized, bt)
    }

    /// Local redundancy check: a literal is redundant if it has a reason
    /// clause all of whose other literals are already in the learned
    /// clause (seen) or assigned at level 0.
    fn literal_redundant(&self, l: Lit) -> bool {
        let v = l.var().index();
        match self.reason[v] {
            None => false,
            Some(Reason::Binary(other)) => {
                self.seen[other.var().index()] || self.level[other.var().index()] == 0
            }
            Some(Reason::Clause(cref)) => self.ca.lits(cref).iter().all(|&q| {
                q.var() == l.var() || self.seen[q.var().index()] || self.level[q.var().index()] == 0
            }),
        }
    }

    fn backtrack_to(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level as usize];
        for i in (bound..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().index();
            self.assigns[v] = LBool::Undef;
            self.phase[v] = l.is_positive();
            self.reason[v] = None;
            if !self.heap.contains(v) {
                self.heap.insert(v, &self.activity);
            }
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(level as usize);
        self.qhead = bound;
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        if self.decision_heuristic {
            if self.config.random_var_freq > 0.0
                && self.rng.next_f64() < self.config.random_var_freq
            {
                // Leaving the picked variable in the heap is fine: an
                // assigned entry is skipped on a later pop.
                if let Some(v) = self.random_free_var() {
                    return Some(v);
                }
            }
            while let Some(v) = self.heap.pop_max(&self.activity) {
                if self.assigns[v] == LBool::Undef {
                    return Some(Var(v as u32));
                }
            }
            None
        } else {
            (0..self.num_vars())
                .find(|&v| self.assigns[v] == LBool::Undef)
                .map(|v| Var(v as u32))
        }
    }

    /// A uniformly random unassigned, non-eliminated variable. Bounded
    /// probing: after a few misses the caller falls back to the
    /// activity heap.
    fn random_free_var(&mut self) -> Option<Var> {
        let n = self.num_vars();
        if n == 0 {
            return None;
        }
        for _ in 0..10 {
            let v = (self.rng.next_u64() % n as u64) as usize;
            if self.assigns[v] == LBool::Undef && !self.eliminated[v] {
                return Some(Var(v as u32));
            }
        }
        None
    }

    /// Decision polarity for `v` under the configured policy.
    fn decide_polarity(&mut self, v: Var) -> bool {
        let f = self.config.random_polarity_freq;
        if f > 0.0 && self.rng.next_f64() < f {
            return self.rng.next_u64() & 1 == 0;
        }
        match self.config.phase {
            PhaseMode::Saved => self.phase[v.index()],
            PhaseMode::AlwaysFalse => false,
            PhaseMode::AlwaysTrue => true,
        }
    }

    /// Glue (literal-block distance) of a clause: the number of distinct
    /// decision levels among its literals. Must run while the literals
    /// are still assigned, i.e. before backtracking away from the
    /// conflict that produced them.
    fn clause_glue(&mut self, lits: &[Lit]) -> u32 {
        self.glue_tick += 1;
        let stamp = self.glue_tick;
        let mut glue = 0u32;
        for &l in lits {
            let lvl = self.level[l.var().index()] as usize;
            if self.glue_stamp[lvl] != stamp {
                self.glue_stamp[lvl] = stamp;
                glue += 1;
            }
        }
        glue
    }

    /// Coarse-tick bookkeeping: progress sampling, peer-clause pickup,
    /// and the armed-budget check.
    fn tick_poll(&mut self) -> Option<StopReason> {
        self.obs_sample();
        if self.share.is_some() {
            self.drain_shared();
        }
        self.check_armed()
    }

    /// Copies freshly published peer clauses into the pending-import
    /// buffer (bounded; overflow is dropped, which is always sound).
    #[cold]
    fn drain_shared(&mut self) {
        if let Some(ctx) = self.share.as_mut() {
            let pending = &mut self.pending_import;
            ctx.drain(|c| {
                if pending.len() < MAX_PENDING_IMPORTS {
                    pending.push(c);
                }
            });
        }
    }

    /// Installs pending peer clauses. Only called at decision level 0.
    /// Returns `false` if an import revealed top-level unsatisfiability.
    ///
    /// Peer learnts are implied by the shared original formula, so
    /// installing them preserves both verdicts and models — even when
    /// they mention variables this worker's preprocessor eliminated
    /// (every model of the originals satisfies every implied clause, so
    /// model reconstruction stays valid without reactivation).
    fn install_imports(&mut self) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        while let Some(c) = self.pending_import.pop() {
            if !self.ok {
                self.pending_import.clear();
                return false;
            }
            self.stats.shared_imported += 1;
            self.add_learnt_vec(c.lits().to_vec());
        }
        self.ok
    }

    /// Whether the clause is the reason of its first literal's
    /// assignment (such clauses must survive database reduction).
    /// Position 0 stays the implied literal for as long as the clause is
    /// a reason — propagation only swaps it away once it is unassigned.
    fn locked(&self, cref: ClauseRef) -> bool {
        let l0 = self.ca.lit(cref, 0);
        lit_value(&self.assigns, l0) == LBool::True
            && self.reason[l0.var().index()] == Some(Reason::Clause(cref))
    }

    /// Deletes the lowest-activity half of the learnt arena clauses.
    /// Deleted clauses are only marked (lazy detachment: their watchers
    /// fall out during propagation or garbage collection), so reduction
    /// is linear in the learnt count rather than in watch-list lengths.
    ///
    /// The victims are found with a median-of-activity partition
    /// (MiniSat's `reduceDB` trick) instead of a full sort: expected O(n)
    /// rather than O(n log n) on large learnt sets, and no side vector of
    /// (activity, clause) pairs.
    fn reduce_db(&mut self) {
        let target = self.learnts.len() / 2;
        let mut removed = 0u64;
        if target > 0 {
            let ca = &self.ca;
            let (low, _, _) = self.learnts.select_nth_unstable_by(target, |&a, &b| {
                ca.activity(a)
                    .partial_cmp(&ca.activity(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let victims: Vec<ClauseRef> = low.to_vec();
            for cref in victims {
                if self.locked(cref) {
                    continue;
                }
                self.ca.free(cref);
                removed += 1;
            }
        }
        if removed > 0 {
            let ca = &self.ca;
            self.learnts.retain(|&c| !ca.is_deleted(c));
            self.num_learnts -= removed;
            self.stats.deleted += removed;
            self.stats.learnts = self.num_learnts;
        }
        if self.ca.should_collect() {
            self.garbage_collect();
        }
    }

    /// Copies all live clauses into a fresh arena and rewrites every
    /// stored reference (watch lists, reasons, clause lists). Also drops
    /// the watchers of lazily-detached clauses.
    ///
    /// Watch lists are *rebuilt* from the clause arrays rather than
    /// relocated watcher by watcher: each list is first stripped to its
    /// inlined binary clauses (empty and binary-only lists — the common
    /// case on bit-blasted instances — cost nothing), then every live
    /// clause re-attaches its two watchers from its own literals. This
    /// relocates each clause exactly once from a sequential scan of the
    /// clause arrays instead of chasing arena forwarding pointers from
    /// scattered watch-list entries.
    fn garbage_collect(&mut self) {
        let mut to = ClauseAllocator::with_capacity(self.ca.len_words() - self.ca.wasted_words());
        for list in &mut self.watches {
            // Keep only the watcher-inlined binaries; long-clause watchers
            // (including those of lazily-detached clauses) are rebuilt.
            list.retain(|w| w.cref.is_none());
        }
        let ca = &mut self.ca;
        for cref in self.clauses.iter_mut().chain(self.learnts.iter_mut()) {
            *cref = ca.reloc(*cref, &mut to);
        }
        // Only assigned variables can hold reasons, and reduce_db never
        // frees locked clauses, so every reason clause is live (and was
        // just relocated through its clause-list entry).
        for &l in &self.trail {
            let v = l.var().index();
            if let Some(Reason::Clause(cref)) = self.reason[v] {
                self.reason[v] = Some(Reason::Clause(ca.reloc(cref, &mut to)));
            }
        }
        self.ca = to;
        for i in 0..self.clauses.len() {
            self.attach(self.clauses[i]);
        }
        for i in 0..self.learnts.len() {
            self.attach(self.learnts[i]);
        }
        self.stats.gc_runs += 1;
    }

    /// Forces an arena compaction regardless of the wasted fraction.
    /// Useful after large clause deletions (and for tests exercising
    /// reference relocation); the solver also collects automatically once
    /// a fifth of the arena is dead.
    pub fn reclaim_memory(&mut self) {
        self.garbage_collect();
    }

    /// Solves the current formula with no assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with(&[])
    }

    /// Solves the current formula under the given assumption literals.
    ///
    /// Assumptions are enforced as pseudo-decisions: a result of
    /// [`SolveResult::Unsat`] means the formula is unsatisfiable *under
    /// these assumptions* (the formula itself may still be satisfiable).
    /// The solver always returns at decision level 0, ready for more
    /// clauses or another call.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.has_model = false;
        self.stop_reason = None;
        self.solve_base = (self.stats.conflicts, self.stats.propagations);
        // A budget already spent (deadline passed, cancellation pending,
        // arena over cap) fails the call before any search happens — even
        // a trivially-unsat formula reports Unknown, so "cancelled run ⇒
        // no verdict" holds unconditionally for the scheduler.
        if let Some(reason) = self.check_armed() {
            self.stop_reason = Some(reason);
            return SolveResult::Unknown;
        }
        if !self.ok {
            return SolveResult::Unsat;
        }
        for &a in assumptions {
            assert!(
                a.var().index() < self.num_vars(),
                "assumption {a} uses an unknown variable"
            );
        }
        // An assumption over an eliminated variable forces it back into
        // the clause database before search can branch on it.
        self.reactivate_touched(assumptions);
        if self.preprocess_enabled && self.ok {
            // Growth gate: run on the first solve, then again only after
            // the clause database has grown by half (incremental BMC adds
            // a frame's worth of clauses between calls).
            let n = self.num_clauses();
            if n > 0 && 2 * n >= 3 * self.last_simp_clauses {
                self.preprocess(assumptions);
            }
        }
        if !self.ok {
            // Reactivation or preprocessing derived level-0 unsatisfiability.
            return SolveResult::Unsat;
        }
        // Track the growing clause database (incremental BMC keeps adding
        // frames): the learnt budget must scale with it or the solver
        // thrashes in back-to-back reductions.
        self.max_learnts = self
            .max_learnts
            .max((self.num_clauses() as f64 / 3.0).max(100.0));
        let budget_start = self.stats.conflicts;
        let mut restart_count = 0u64;
        let result = loop {
            // Between runs the solver sits at level 0: the natural point
            // to install clauses imported from portfolio peers.
            if !self.pending_import.is_empty() && !self.install_imports() {
                break SolveResult::Unsat;
            }
            let conflicts_allowed = match self.config.restart {
                RestartStrategy::Luby { base, unit } => {
                    unit.saturating_mul(luby(base, restart_count) as u64)
                }
                RestartStrategy::Glucose { .. } | RestartStrategy::Never => u64::MAX,
            };
            match self.search(conflicts_allowed, assumptions, budget_start) {
                SearchOutcome::Sat => break SolveResult::Sat,
                SearchOutcome::Unsat => break SolveResult::Unsat,
                SearchOutcome::Interrupted(reason) => {
                    self.stop_reason = Some(reason);
                    break SolveResult::Unknown;
                }
                SearchOutcome::Restart => {
                    restart_count += 1;
                    self.stats.restarts += 1;
                    // Damp glucose's fast average so one trigger doesn't
                    // immediately re-fire after the restart.
                    self.lbd_fast = self.lbd_slow;
                }
            }
        };
        if result == SolveResult::Sat {
            for v in 0..self.num_vars() {
                self.model[v] = self.assigns[v] == LBool::True;
            }
            self.extend_model();
            self.has_model = true;
        }
        self.backtrack_to(0);
        result
    }

    /// CDCL progress sample, taken at the coarse budget tick (the one
    /// place search already pays for `Instant::now`). Records the
    /// conflict-rate and propagation-latency deltas since the previous
    /// tick into log-bucketed histograms and emits a periodic
    /// `sat.progress` trace event (conflicts, restarts, learnt-DB size).
    /// A relaxed-load no-op when observability is off.
    #[cold]
    fn obs_sample(&mut self) {
        if !aqed_obs::enabled() {
            self.obs.last = None;
            return;
        }
        let now = std::time::Instant::now();
        let conflicts = self.stats.conflicts;
        let props = self.stats.propagations;
        if let Some((t0, c0, p0)) = self.obs.last {
            let dt_ns = u64::try_from(now.duration_since(t0).as_nanos()).unwrap_or(u64::MAX);
            let dc = conflicts.saturating_sub(c0);
            let dp = props.saturating_sub(p0);
            // Live per-job attribution: heartbeats see conflicts move
            // *during* a long solve, not just at obligation boundaries.
            aqed_obs::meter::add_live_conflicts(dc);
            if let Some(rate) = dc.saturating_mul(1_000_000_000).checked_div(dt_ns) {
                if self.obs.handles.is_none() {
                    let m = aqed_obs::metrics::global();
                    let (conflict_rate, prop_latency) = match self.metrics_scope.as_deref() {
                        Some(scope) => (
                            m.histogram_scoped("sat.conflict_rate_per_s", scope),
                            m.histogram_scoped("sat.prop_latency_ns", scope),
                        ),
                        None => (
                            m.histogram("sat.conflict_rate_per_s"),
                            m.histogram("sat.prop_latency_ns"),
                        ),
                    };
                    self.obs.handles = Some(ObsHandles {
                        conflict_rate,
                        prop_latency,
                    });
                }
                let h = self.obs.handles.as_ref().expect("handles just resolved");
                h.conflict_rate.record(rate);
                if let Some(lat) = dt_ns.checked_div(dp) {
                    h.prop_latency.record(lat);
                }
            }
        }
        self.obs.last = Some((now, conflicts, props));
        self.obs.samples += 1;
        if self.obs.samples.is_multiple_of(16) {
            aqed_obs::obs_event!(
                "sat.progress",
                conflicts = conflicts,
                propagations = props,
                restarts = self.stats.restarts,
                learnts = self.num_learnts,
                clauses = self.num_clauses(),
            );
        }
    }

    fn search(
        &mut self,
        conflicts_allowed: u64,
        assumptions: &[Lit],
        budget_start: u64,
    ) -> SearchOutcome {
        let mut conflicts_here = 0u64;
        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SearchOutcome::Unsat;
                }
                let (learnt, bt_level) = self.analyze(conflict);
                // Glue is only needed for glucose restarts and the
                // sharing filter; the default Luby-without-sharing path
                // skips the computation entirely.
                if self.share.is_some()
                    || matches!(self.config.restart, RestartStrategy::Glucose { .. })
                {
                    let glue = self.clause_glue(&learnt);
                    self.lbd_fast += LBD_EMA_FAST * (f64::from(glue) - self.lbd_fast);
                    self.lbd_slow += LBD_EMA_SLOW * (f64::from(glue) - self.lbd_slow);
                    if glue <= MAX_SHARED_GLUE && learnt.len() <= MAX_SHARED_LITS {
                        if let Some(share) = &self.share {
                            share.export(&learnt);
                            self.stats.shared_exported += 1;
                        }
                    }
                }
                self.backtrack_to(bt_level);
                match learnt.len() {
                    1 => self.unchecked_enqueue(learnt[0], None),
                    2 => {
                        self.attach_binary(learnt[0], learnt[1], true);
                        self.unchecked_enqueue(learnt[0], Some(Reason::Binary(learnt[1])));
                    }
                    _ => {
                        let cref = self.alloc_clause(&learnt, true);
                        self.unchecked_enqueue(learnt[0], Some(Reason::Clause(cref)));
                    }
                }
                self.decay_var_activity();
                self.decay_clause_activity();
                if let Some(budget) = self.conflict_budget {
                    if self.stats.conflicts - budget_start >= budget {
                        self.backtrack_to(0);
                        return SearchOutcome::Interrupted(StopReason::Conflicts);
                    }
                }
                self.tick += 1;
                if self.tick.is_multiple_of(BUDGET_CHECK_INTERVAL) {
                    if let Some(reason) = self.tick_poll() {
                        self.backtrack_to(0);
                        return SearchOutcome::Interrupted(reason);
                    }
                }
            } else {
                self.tick += 1;
                if self.tick.is_multiple_of(BUDGET_CHECK_INTERVAL) {
                    if let Some(reason) = self.tick_poll() {
                        self.backtrack_to(0);
                        return SearchOutcome::Interrupted(reason);
                    }
                }
                if !self.pending_import.is_empty()
                    && self.decision_level() == 0
                    && !self.install_imports()
                {
                    return SearchOutcome::Unsat;
                }
                let restart_now = match self.config.restart {
                    RestartStrategy::Luby { .. } => conflicts_here >= conflicts_allowed,
                    RestartStrategy::Glucose {
                        margin,
                        min_conflicts,
                    } => conflicts_here >= min_conflicts && self.lbd_fast > margin * self.lbd_slow,
                    RestartStrategy::Never => false,
                };
                if restart_now {
                    self.backtrack_to(0);
                    return SearchOutcome::Restart;
                }
                if self.num_learnts as f64 > self.max_learnts + self.trail.len() as f64 {
                    self.reduce_db();
                    self.max_learnts *= 1.1;
                }
                // Re-assert assumptions as pseudo-decisions.
                let mut next_decision: Option<Lit> = None;
                while (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.value_lit(a) {
                        LBool::True => {
                            // Already implied; open an empty decision level.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            // Conflicts with current forced assignment.
                            return SearchOutcome::Unsat;
                        }
                        LBool::Undef => {
                            next_decision = Some(a);
                            break;
                        }
                    }
                }
                let decision = match next_decision {
                    Some(a) => a,
                    None => match self.pick_branch_var() {
                        Some(v) => {
                            let polarity = self.decide_polarity(v);
                            v.lit(polarity)
                        }
                        None => return SearchOutcome::Sat,
                    },
                };
                self.stats.decisions += 1;
                self.trail_lim.push(self.trail.len());
                self.unchecked_enqueue(decision, None);
            }
        }
    }

    /// The value of `v` in the most recent satisfying assignment, or
    /// `None` if the last solve did not return [`SolveResult::Sat`].
    #[must_use]
    pub fn model_value(&self, v: Var) -> Option<bool> {
        if self.has_model {
            Some(self.model[v.index()])
        } else {
            None
        }
    }

    /// The value of literal `l` in the most recent satisfying assignment.
    #[must_use]
    pub fn model_lit(&self, l: Lit) -> Option<bool> {
        self.model_value(l.var()).map(|b| b == l.is_positive())
    }

    // ----- pre-search simplification (SatELite-style) -----

    /// Enables or disables CNF preprocessing (subsumption, self-subsuming
    /// resolution, bounded variable elimination) inside solve calls. Off
    /// by default. Eliminated variables stay fully usable from outside:
    /// model queries reconstruct their values, and a later clause or
    /// assumption over one transparently reactivates it — freezing
    /// ([`Solver::freeze_var`]) is a throughput measure for variables
    /// known to be re-constrained soon, not a correctness requirement.
    pub fn set_preprocessing(&mut self, enabled: bool) {
        self.preprocess_enabled = enabled;
    }

    /// Marks `v` as permanently exempt from variable elimination. Callers
    /// freeze their live interface (frame-boundary variables in
    /// incremental BMC): eliminating those would only trigger a
    /// reactivate-and-re-add cycle when the next frame constrains them.
    pub fn freeze_var(&mut self, v: Var) {
        self.frozen[v.index()] = true;
    }

    /// Brings eliminated variables referenced by `lits` back to life:
    /// their stored original clauses are re-added, cascading into any
    /// further eliminated variable those clauses mention. Sound because
    /// the resolvents an elimination left behind are consequences of the
    /// originals, so originals and resolvents can coexist.
    fn reactivate_touched(&mut self, lits: &[Lit]) {
        if self.elim_stack.is_empty() {
            return;
        }
        let mut work: Vec<Var> = lits
            .iter()
            .map(|l| l.var())
            .filter(|v| self.eliminated[v.index()])
            .collect();
        if work.is_empty() {
            return;
        }
        let mut to_add: Vec<Vec<Lit>> = Vec::new();
        while let Some(v) = work.pop() {
            let vi = v.index();
            if !self.eliminated[vi] {
                continue;
            }
            self.eliminated[vi] = false;
            let idx = self.elim_index[vi] as usize;
            self.elim_index[vi] = u32::MAX;
            debug_assert_eq!(self.elim_stack[idx].var, v);
            // The record stays on the stack (model extension skips it via
            // the `eliminated` check) but gives up its clauses.
            let clauses = std::mem::take(&mut self.elim_stack[idx].clauses);
            for c in &clauses {
                for &l in c {
                    if self.eliminated[l.var().index()] {
                        work.push(l.var());
                    }
                }
            }
            to_add.extend(clauses);
        }
        for c in to_add {
            if !self.ok {
                return;
            }
            self.add_clause_vec(c);
        }
    }

    /// Runs the SatELite-style preprocessor over the irredundant clauses
    /// and rebuilds the solver from the simplified set. Frozen variables,
    /// this call's assumption variables, level-0-assigned variables, and
    /// already-eliminated variables are exempt from elimination. Long
    /// learnt clauses ride along untouched unless they mention a newly
    /// eliminated variable (dropping a learnt is always sound); binary
    /// learnts are indistinguishable in the watch lists and fold into the
    /// irredundant set.
    fn preprocess(&mut self, assumptions: &[Lit]) {
        debug_assert_eq!(self.decision_level(), 0);
        let mut obs_span = aqed_obs::span("sat.preprocess");
        let start = std::time::Instant::now();
        let mut frozen = self.frozen.clone();
        for &a in assumptions {
            frozen[a.var().index()] = true;
        }
        for (v, f) in frozen.iter_mut().enumerate() {
            // A level-0 assignment must keep its variable: eliminating it
            // (with an empty record, since it has no unsatisfied clauses)
            // would let model extension overwrite the forced value. An
            // already-eliminated variable owns a stack record; the
            // preprocessor must not create a second one.
            if self.assigns[v] != LBool::Undef || self.eliminated[v] {
                *f = true;
            }
        }
        let mut cnf: Vec<Vec<Lit>> = Vec::with_capacity(self.clauses.len() + self.num_binary);
        for i in 0..self.watches.len() {
            // Inlined binaries appear in both watch lists as
            // (¬watched ∨ blocker); take the copy where the implicit
            // literal is the smaller one.
            let implicit = !Lit(i as u32);
            for wi in 0..self.watches[i].len() {
                let w = self.watches[i][wi];
                if w.cref.is_some() || implicit >= w.blocker {
                    continue;
                }
                if let Some(c) = self.simplified_lits(&[implicit, w.blocker]) {
                    cnf.push(c);
                }
            }
        }
        for idx in 0..self.clauses.len() {
            let cref = self.clauses[idx];
            if self.ca.is_deleted(cref) {
                continue;
            }
            let lits: Vec<Lit> = self.ca.lits(cref).to_vec();
            if let Some(c) = self.simplified_lits(&lits) {
                cnf.push(c);
            }
        }
        let mut learnt_keep: Vec<Vec<Lit>> = Vec::new();
        for idx in 0..self.learnts.len() {
            let cref = self.learnts[idx];
            if self.ca.is_deleted(cref) {
                continue;
            }
            let lits: Vec<Lit> = self.ca.lits(cref).to_vec();
            if let Some(c) = self.simplified_lits(&lits) {
                learnt_keep.push(c);
            }
        }
        let armed = self.armed.clone();
        let clauses_in = cnf.len();
        let outcome = Preprocessor::new(self.num_vars(), cnf, frozen).run(&armed);
        if aqed_obs::enabled() {
            let m = aqed_obs::metrics::global();
            m.counter("pp.rounds").inc();
            m.counter("pp.subsumed").add(outcome.subsumed);
            m.counter("pp.reenqueues").add(outcome.reenqueued);
            m.histogram("pp.elims_per_round")
                .record(outcome.eliminated.len() as u64);
            obs_span.record("clauses_in", clauses_in);
            obs_span.record("clauses_out", outcome.clauses.len());
            obs_span.record("subsumed", outcome.subsumed);
            obs_span.record("eliminated", outcome.eliminated.len());
            obs_span.record("reenqueued", outcome.reenqueued);
            obs_span.record("unsat", outcome.unsat);
        }
        self.rebuild(outcome, learnt_keep);
        self.stats.preprocess_micros += start.elapsed().as_micros() as u64;
        self.last_simp_clauses = self.num_clauses().max(1);
    }

    /// The clause restricted to the level-0 trail: `None` if satisfied,
    /// otherwise its unassigned literals. Only called at decision level 0,
    /// where every assignment is a root-level fact.
    fn simplified_lits(&self, lits: &[Lit]) -> Option<Vec<Lit>> {
        let mut out = Vec::with_capacity(lits.len());
        for &l in lits {
            match self.value_lit(l) {
                LBool::True => return None,
                LBool::False => {}
                LBool::Undef => out.push(l),
            }
        }
        Some(out)
    }

    /// Replaces the entire clause database with the preprocessor's
    /// output: fresh arena, rebuilt watch lists, newly registered
    /// eliminations. The level-0 trail survives (its variables were
    /// frozen), but its reason references into the discarded arena are
    /// cleared — level-0 literals never need antecedents, conflict
    /// analysis stops above them.
    fn rebuild(&mut self, outcome: PreprocessOutcome, learnt_keep: Vec<Vec<Lit>>) {
        self.ca = ClauseAllocator::new();
        self.clauses.clear();
        self.learnts.clear();
        self.num_binary = 0;
        self.num_learnts = 0;
        self.stats.learnts = 0;
        for list in &mut self.watches {
            list.clear();
        }
        for i in 0..self.trail.len() {
            self.reason[self.trail[i].var().index()] = None;
        }
        self.qhead = self.trail.len();
        for rec in outcome.eliminated {
            let vi = rec.var.index();
            debug_assert!(!self.frozen[vi] && !self.eliminated[vi]);
            self.eliminated[vi] = true;
            self.elim_index[vi] =
                u32::try_from(self.elim_stack.len()).expect("elimination stack fits in u32");
            self.stats.eliminated_vars += 1;
            self.elim_stack.push(rec);
        }
        self.stats.subsumed += outcome.subsumed;
        if outcome.unsat {
            self.ok = false;
            return;
        }
        // Re-add through the normal level-0 path: units found by the
        // preprocessor enqueue and propagate here, so later clauses
        // simplify against them.
        for c in outcome.clauses {
            if !self.ok {
                return;
            }
            self.add_clause_vec(c);
        }
        for c in learnt_keep {
            if !self.ok {
                return;
            }
            if c.iter().any(|&l| self.eliminated[l.var().index()]) {
                continue;
            }
            self.add_learnt_vec(c);
        }
    }

    /// Re-attaches a held-aside learnt clause after a rebuild,
    /// re-simplifying it against the (possibly extended) level-0 trail.
    /// Learnt clauses are implied, so a unit or empty result is a sound
    /// root-level derivation.
    fn add_learnt_vec(&mut self, mut ls: Vec<Lit>) {
        ls.sort_unstable();
        ls.dedup();
        let mut out: Vec<Lit> = Vec::with_capacity(ls.len());
        for (i, &l) in ls.iter().enumerate() {
            if i + 1 < ls.len() && ls[i + 1] == !l {
                return;
            }
            match self.value_lit(l) {
                LBool::True => return,
                LBool::False => {}
                LBool::Undef => out.push(l),
            }
        }
        match out.len() {
            0 => self.ok = false,
            1 => {
                self.unchecked_enqueue(out[0], None);
                self.ok = self.propagate().is_none();
            }
            2 => self.attach_binary(out[0], out[1], true),
            _ => {
                self.alloc_clause(&out, true);
            }
        }
    }

    /// Completes the model with values for eliminated variables, walking
    /// the elimination stack newest-first. For each still-eliminated
    /// variable, if any stored original clause is unsatisfied by the
    /// model over the other variables, that clause's pivot polarity fixes
    /// the value — all unsatisfied stored clauses agree, since a
    /// positive-pivot and a negative-pivot clause both unsatisfied would
    /// leave their (satisfied) resolvent unsatisfied. Otherwise the
    /// search-time value stands.
    fn extend_model(&mut self) {
        for idx in (0..self.elim_stack.len()).rev() {
            let (v, forced) = {
                let rec = &self.elim_stack[idx];
                if !self.eliminated[rec.var.index()] {
                    continue;
                }
                let mut forced: Option<bool> = None;
                for clause in &rec.clauses {
                    let mut satisfied = false;
                    let mut pivot_pos = true;
                    for &l in clause {
                        if l.var() == rec.var {
                            pivot_pos = l.is_positive();
                        } else if self.model[l.var().index()] == l.is_positive() {
                            satisfied = true;
                            break;
                        }
                    }
                    if !satisfied {
                        forced = Some(pivot_pos);
                        break;
                    }
                }
                (rec.var, forced)
            };
            if let Some(b) = forced {
                self.model[v.index()] = b;
            }
        }
    }

    /// Replays the most recent model through unit propagation alone:
    /// every model literal is enqueued as a pseudo-decision on one
    /// scratch decision level and propagated, then the trail is restored.
    /// This exercises `propagate()` over the live clause database with no
    /// search overhead — the benchmark harness's propagation microscope.
    /// The propagations performed accrue to [`SolverStats`].
    ///
    /// Returns `None` if no model is available. `conflicted` can only
    /// become `true` when clauses were added after the model was found
    /// (propagation from a subset of a model stays within the model).
    pub fn replay_model_propagation(&mut self) -> Option<PropagationReplay> {
        if !self.has_model {
            return None;
        }
        assert_eq!(self.decision_level(), 0, "replay must start at level 0");
        let base = self.stats.propagations;
        self.trail_lim.push(self.trail.len());
        let mut enqueued = 0usize;
        let mut conflicted = false;
        for v in 0..self.num_vars() {
            if self.assigns[v] != LBool::Undef || self.eliminated[v] {
                continue;
            }
            let l = Var(v as u32).lit(self.model[v]);
            self.unchecked_enqueue(l, None);
            enqueued += 1;
            if self.propagate().is_some() {
                conflicted = true;
                break;
            }
        }
        let propagated = self.stats.propagations - base;
        self.backtrack_to(0);
        Some(PropagationReplay {
            enqueued,
            propagated,
            conflicted,
        })
    }
}

/// Outcome of [`Solver::replay_model_propagation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PropagationReplay {
    /// Model literals enqueued as pseudo-decisions (variables that were
    /// unassigned and not eliminated).
    pub enqueued: usize,
    /// Unit propagations performed during the replay.
    pub propagated: u64,
    /// Whether the replay hit a conflict (stale model only).
    pub conflicted: bool,
}

enum SearchOutcome {
    Sat,
    Unsat,
    Restart,
    Interrupted(StopReason),
}

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, …
fn luby(y: f64, mut x: u64) -> f64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    y.powi(seq as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(s: &mut Solver, n: usize) -> Vec<Var> {
        s.new_vars(n)
    }

    /// At-most-one-pigeon-per-hole clauses of a PHP instance, added
    /// hole-major (hole, then pigeon pair).
    fn php_exclusivity(s: &mut Solver, p: &[Vec<Var>]) {
        for h in 0..p[0].len() {
            let col: Vec<Var> = p.iter().map(|row| row[h]).collect();
            for (i, &a) in col.iter().enumerate() {
                for &b in &col[i + 1..] {
                    s.add_clause([a.neg(), b.neg()]);
                }
            }
        }
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn unit_clauses() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        assert!(s.add_clause([v[0].pos()]));
        assert!(s.add_clause([v[1].neg()]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(v[0]), Some(true));
        assert_eq!(s.model_value(v[1]), Some(false));
        assert_eq!(s.model_lit(v[1].neg()), Some(true));
    }

    #[test]
    fn direct_contradiction() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        assert!(s.add_clause([v[0].pos()]));
        assert!(!s.add_clause([v[0].neg()]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn tautology_ignored() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        assert!(s.add_clause([v[0].pos(), v[0].neg()]));
        assert_eq!(s.num_clauses(), 0);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn duplicate_literals_deduped() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        assert!(s.add_clause([v[0].pos(), v[0].pos(), v[1].pos()]));
        assert!(s.add_clause([v[0].neg()]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(v[1]), Some(true));
    }

    #[test]
    fn implication_chain() {
        // x0 ∧ (x_i → x_{i+1}) forces all true.
        let mut s = Solver::new();
        let v = vars(&mut s, 20);
        assert!(s.add_clause([v[0].pos()]));
        for i in 0..19 {
            assert!(s.add_clause([v[i].neg(), v[i + 1].pos()]));
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        for x in &v {
            assert_eq!(s.model_value(*x), Some(true));
        }
    }

    #[test]
    fn binary_fast_path_counts_propagations() {
        // Trigger the chain with an assumption (not a unit clause) so the
        // binaries survive level-0 simplification and propagate through
        // the watcher-inlined fast path.
        let mut s = Solver::new();
        let v = vars(&mut s, 10);
        for i in 0..9 {
            assert!(s.add_binary(v[i].neg(), v[i + 1].pos()));
        }
        assert_eq!(s.solve_with(&[v[0].pos()]), SolveResult::Sat);
        assert!(s.stats().binary_props >= 9);
    }

    #[test]
    fn xor_constraints_unsat() {
        // a ⊕ b, b ⊕ c, a ⊕ c is UNSAT (odd cycle).
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        let xor = |s: &mut Solver, a: Var, b: Var| {
            s.add_clause([a.pos(), b.pos()]);
            s.add_clause([a.neg(), b.neg()]);
        };
        xor(&mut s, v[0], v[1]);
        xor(&mut s, v[1], v[2]);
        xor(&mut s, v[0], v[2]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_unsat() {
        // PHP(4,3): 4 pigeons in 3 holes — classically hard for resolution
        // at large sizes, easy at this size, and a good conflict-analysis
        // exerciser.
        let (pigeons, holes) = (4usize, 3usize);
        let mut s = Solver::new();
        let mut p = vec![vec![Var(0); holes]; pigeons];
        for row in p.iter_mut() {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(row.iter().map(|v| v.pos()));
        }
        php_exclusivity(&mut s, &p);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn php_5_4_unsat() {
        let (pigeons, holes) = (5usize, 4usize);
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..pigeons).map(|_| s.new_vars(holes)).collect();
        for row in &p {
            s.add_clause(row.iter().map(|v| v.pos()));
        }
        php_exclusivity(&mut s, &p);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_basic() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause([v[0].neg(), v[1].pos()]); // a → b
        assert_eq!(s.solve_with(&[v[0].pos()]), SolveResult::Sat);
        assert_eq!(s.model_value(v[1]), Some(true));
        assert_eq!(s.solve_with(&[v[0].pos(), v[1].neg()]), SolveResult::Unsat);
        // Solver remains usable and the formula itself is still SAT.
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn assumptions_conflicting_pair() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        assert_eq!(s.solve_with(&[v[0].pos(), v[0].neg()]), SolveResult::Unsat);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn incremental_adding_between_solves() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause([v[0].pos(), v[1].pos(), v[2].pos()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause([v[0].neg()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause([v[1].neg()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(v[2]), Some(true));
        s.add_clause([v[2].neg()]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        // Once globally UNSAT, stays UNSAT.
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn conflict_budget_reports_unknown() {
        // A PHP instance large enough to need > 1 conflict.
        let (pigeons, holes) = (6usize, 5usize);
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..pigeons).map(|_| s.new_vars(holes)).collect();
        for row in &p {
            s.add_clause(row.iter().map(|v| v.pos()));
        }
        php_exclusivity(&mut s, &p);
        s.set_conflict_budget(Some(1));
        assert_eq!(s.solve(), SolveResult::Unknown);
        s.set_conflict_budget(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn conflict_budget_sets_stop_reason() {
        let (pigeons, holes) = (6usize, 5usize);
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..pigeons).map(|_| s.new_vars(holes)).collect();
        for row in &p {
            s.add_clause(row.iter().map(|v| v.pos()));
        }
        php_exclusivity(&mut s, &p);
        s.set_conflict_budget(Some(1));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.stop_reason(), Some(StopReason::Conflicts));
        s.set_conflict_budget(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert_eq!(s.stop_reason(), None);
    }

    #[test]
    fn expired_deadline_fails_fast_with_reason() {
        use crate::budget::Budget;
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause([v[0].pos(), v[1].pos()]);
        s.set_budget(ArmedBudget::arm(
            &Budget::unlimited().with_timeout(std::time::Duration::ZERO),
        ));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.stop_reason(), Some(StopReason::Deadline));
        // Removing the budget restores normal operation.
        s.set_budget(ArmedBudget::unlimited());
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn cancelled_budget_reports_cancelled() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        s.add_clause([v[0].pos()]);
        let armed = ArmedBudget::unlimited();
        armed.cancel();
        s.set_budget(armed);
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.stop_reason(), Some(StopReason::Cancelled));
    }

    #[test]
    fn armed_conflict_cap_interrupts_search() {
        use crate::budget::Budget;
        // PHP(8,7) needs well over the check interval of conflicts.
        let (pigeons, holes) = (8usize, 7usize);
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..pigeons).map(|_| s.new_vars(holes)).collect();
        for row in &p {
            s.add_clause(row.iter().map(|v| v.pos()));
        }
        php_exclusivity(&mut s, &p);
        s.set_budget(ArmedBudget::arm(&Budget::unlimited().with_max_conflicts(1)));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.stop_reason(), Some(StopReason::Conflicts));
        // The coarse check interval bounds the overshoot.
        assert!(s.stats().conflicts <= 2 * BUDGET_CHECK_INTERVAL);
        s.set_budget(ArmedBudget::unlimited());
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn ablation_switches_do_not_change_answers() {
        for (restarts, heuristic) in [(true, false), (false, true), (false, false)] {
            let mut s = Solver::new();
            s.set_restarts_enabled(restarts);
            s.set_decision_heuristic(heuristic);
            let p: Vec<Vec<Var>> = (0..4).map(|_| s.new_vars(3)).collect();
            for row in &p {
                s.add_clause(row.iter().map(|v| v.pos()));
            }
            php_exclusivity(&mut s, &p);
            assert_eq!(s.solve(), SolveResult::Unsat);
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let got: Vec<f64> = (0..9).map(|i| luby(2.0, i)).collect();
        assert_eq!(got, vec![1.0, 1.0, 2.0, 1.0, 1.0, 2.0, 4.0, 1.0, 1.0]);
    }

    #[test]
    fn stats_display() {
        let s = Solver::new();
        let text = s.stats().to_string();
        assert!(text.contains("decisions=0"));
        assert!(text.contains("conflicts=0"));
        assert!(text.contains("binary_props=0"));
        assert!(text.contains("gc_runs=0"));
    }

    #[test]
    fn small_clause_fast_paths_simplify() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        // Tautology and duplicate handling.
        assert!(s.add_binary(v[0].pos(), v[0].neg()));
        assert!(s.add_ternary(v[0].pos(), v[1].pos(), v[0].neg()));
        assert_eq!(s.num_clauses(), 0);
        // Duplicate literal collapses a ternary to a binary.
        assert!(s.add_ternary(v[0].pos(), v[0].pos(), v[1].pos()));
        assert_eq!(s.num_clauses(), 1);
        // Level-0 false literals are dropped at add time.
        assert!(s.add_binary(v[0].neg(), v[2].neg()));
        assert!(s.add_clause([v[0].pos()]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(v[0]), Some(true));
        assert_eq!(s.model_value(v[2]), Some(false));
        // Contradicting units through the fast path flag UNSAT.
        assert!(!s.add_binary(v[2].pos(), v[2].pos()));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn binary_conflict_and_learning() {
        // All-binary UNSAT instance: conflicts must flow through the
        // watcher-inlined representation (Conflict::Binary / Reason::Binary).
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        s.add_binary(v[0].pos(), v[1].pos());
        s.add_binary(v[0].pos(), v[1].neg());
        s.add_binary(v[0].neg(), v[2].pos());
        s.add_binary(v[0].neg(), v[2].neg());
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn forced_gc_preserves_state() {
        let mut s = Solver::new();
        let v = vars(&mut s, 30);
        for i in 0..28 {
            assert!(s.add_ternary(v[i].neg(), v[i + 1].pos(), v[i + 2].pos()));
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        let before = s.num_clauses();
        let bytes_before = s.stats().arena_bytes;
        s.reclaim_memory();
        assert_eq!(s.stats().gc_runs, 1);
        assert_eq!(s.num_clauses(), before);
        assert!(s.stats().arena_bytes <= bytes_before);
        // Solver stays fully usable across the relocation, including
        // incremental additions and assumption solving.
        assert_eq!(s.solve_with(&[v[0].pos()]), SolveResult::Sat);
        assert!(s.add_clause([v[0].pos()]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(v[0]), Some(true));
    }

    #[test]
    fn reduction_and_gc_under_heavy_search() {
        // PHP(7,6) generates enough learnt clauses to trigger database
        // reduction; force collection afterwards and keep solving.
        let (pigeons, holes) = (7usize, 6usize);
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..pigeons).map(|_| s.new_vars(holes)).collect();
        for row in &p {
            s.add_clause(row.iter().map(|v| v.pos()));
        }
        php_exclusivity(&mut s, &p);
        assert_eq!(s.solve(), SolveResult::Unsat);
        s.reclaim_memory();
        assert!(s.stats().gc_runs >= 1);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    /// A chain x0 → x1 → … → xn as implications. Variable elimination
    /// can collapse every interior variable.
    fn chain_clauses(s: &mut Solver, n: usize) -> Vec<Var> {
        let v = s.new_vars(n);
        for w in v.windows(2) {
            s.add_clause([w[0].neg(), w[1].pos()]);
        }
        v
    }

    #[test]
    fn preprocessing_eliminates_and_reconstructs_models() {
        let mut s = Solver::new();
        s.set_preprocessing(true);
        let v = chain_clauses(&mut s, 8);
        assert_eq!(s.solve(), SolveResult::Sat);
        // Interior chain variables are eliminated (each sits in exactly
        // two clauses), yet the reconstructed model must satisfy every
        // original implication.
        assert!(s.stats().eliminated_vars > 0);
        for w in v.windows(2) {
            let a = s.model_value(w[0]).unwrap();
            let b = s.model_value(w[1]).unwrap();
            assert!(!a || b, "implication {:?} -> {:?} violated", w[0], w[1]);
        }
        // Forcing the head true must force the (eliminated, then
        // reactivated) tail true as well.
        assert_eq!(s.solve_with(&[v[0].pos()]), SolveResult::Sat);
        assert_eq!(s.model_value(v[7]), Some(true));
    }

    #[test]
    fn preprocessing_matches_plain_solver_on_assumptions() {
        // Same incremental session on a preprocessing and a plain solver;
        // results must agree call for call.
        let build = |pre: bool| {
            let mut s = Solver::new();
            s.set_preprocessing(pre);
            let v = s.new_vars(6);
            s.add_clause([v[0].pos(), v[1].pos(), v[2].pos()]);
            s.add_clause([v[0].neg(), v[3].pos()]);
            s.add_clause([v[3].neg(), v[4].pos()]);
            s.add_clause([v[1].neg(), v[4].neg()]);
            let r1 = s.solve_with(&[v[0].pos(), v[1].pos()]);
            s.add_clause([v[4].pos(), v[5].pos()]);
            let r2 = s.solve_with(&[v[5].neg()]);
            let r3 = s.solve_with(&[v[0].pos(), v[4].neg()]);
            (r1, r2, r3)
        };
        assert_eq!(build(true), build(false));
    }

    #[test]
    fn eliminated_variable_reactivates_on_new_clause() {
        let mut s = Solver::new();
        s.set_preprocessing(true);
        let v = chain_clauses(&mut s, 6);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.stats().eliminated_vars > 0);
        // Constraining an eliminated interior variable through new unit
        // clauses must bring its original clauses back: head true plus
        // interior false contradicts the chain.
        assert!(s.add_clause([v[0].pos()]));
        let added = s.add_clause([v[3].neg()]);
        assert!(!added || s.solve() == SolveResult::Unsat);
    }

    #[test]
    fn frozen_variables_are_never_eliminated() {
        let mut s = Solver::new();
        s.set_preprocessing(true);
        let v = chain_clauses(&mut s, 6);
        for &x in &v {
            s.freeze_var(x);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.stats().eliminated_vars, 0);
    }

    #[test]
    fn preprocessing_detects_top_level_unsat() {
        let mut s = Solver::new();
        s.set_preprocessing(true);
        let v = chain_clauses(&mut s, 4);
        s.add_clause([v[0].pos()]);
        s.add_clause([v[3].neg()]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn model_replay_propagates_without_conflict() {
        let mut s = Solver::new();
        assert_eq!(s.replay_model_propagation(), None);
        let v = s.new_vars(5);
        s.add_clause([v[0].pos(), v[1].pos()]);
        s.add_clause([v[1].neg(), v[2].pos()]);
        s.add_clause([v[2].neg(), v[3].pos(), v[4].pos()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        let replay = s.replay_model_propagation().expect("model exists");
        assert!(!replay.conflicted);
        assert!(replay.enqueued > 0);
        // The solver is untouched: still at level 0 and solvable.
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn preprocessing_survives_many_incremental_rounds() {
        // Stress the reactivate/re-eliminate cycle: repeatedly constrain
        // and release chain variables via assumptions.
        let mut s = Solver::new();
        s.set_preprocessing(true);
        let v = chain_clauses(&mut s, 12);
        for round in 0..6 {
            // An eliminated interior variable shows up as an assumption:
            // it must reactivate, and the chain semantics must hold.
            let x = v[2 + round];
            let sat = s.solve_with(&[v[0].pos(), x.pos()]);
            assert_eq!(sat, SolveResult::Sat, "round {round}");
            let unsat = s.solve_with(&[v[0].pos(), x.neg()]);
            assert_eq!(unsat, SolveResult::Unsat, "round {round}");
        }
        assert_eq!(s.solve_with(&[v[0].pos()]), SolveResult::Sat);
        for &x in &v {
            assert_eq!(s.model_value(x), Some(true));
        }
    }

    /// Pins [`SolverStats::absorb`] field by field. The struct literals
    /// are deliberately exhaustive (no `..Default::default()`): adding a
    /// stats field without deciding its aggregation semantics — and
    /// updating both `absorb` and this test — must fail to compile.
    /// Multi-worker portfolio runs fold every worker's stats through
    /// `absorb`, so a forgotten field silently vanishes from reports.
    #[test]
    fn absorb_covers_every_stats_field() {
        let mut a = SolverStats {
            decisions: 1,
            propagations: 2,
            conflicts: 3,
            restarts: 4,
            learnts: 5,
            deleted: 6,
            binary_props: 7,
            gc_runs: 8,
            arena_bytes: 9,
            subsumed: 10,
            eliminated_vars: 11,
            preprocess_micros: 12,
            shared_exported: 13,
            shared_imported: 14,
            wasted_conflicts: 15,
            learnt_imported: 16,
            learnt_discarded: 17,
            portfolio_winner: None,
        };
        let b = SolverStats {
            decisions: 100,
            propagations: 200,
            conflicts: 300,
            restarts: 400,
            learnts: 500,
            deleted: 600,
            binary_props: 700,
            gc_runs: 800,
            arena_bytes: 4, // below a's gauge: max must keep 9
            subsumed: 1000,
            eliminated_vars: 1100,
            preprocess_micros: 1200,
            shared_exported: 1300,
            shared_imported: 1400,
            wasted_conflicts: 1500,
            learnt_imported: 1600,
            learnt_discarded: 1700,
            portfolio_winner: Some(2),
        };
        a.absorb(&b);
        assert_eq!(a.decisions, 101);
        assert_eq!(a.propagations, 202);
        assert_eq!(a.conflicts, 303);
        assert_eq!(a.restarts, 404);
        assert_eq!(a.learnts, 505);
        assert_eq!(a.deleted, 606);
        assert_eq!(a.binary_props, 707);
        assert_eq!(a.gc_runs, 808);
        assert_eq!(a.arena_bytes, 9, "arena_bytes is a gauge: max, not sum");
        assert_eq!(a.subsumed, 1010);
        assert_eq!(a.eliminated_vars, 1111);
        assert_eq!(a.preprocess_micros, 1212);
        assert_eq!(a.shared_exported, 1313);
        assert_eq!(a.shared_imported, 1414);
        assert_eq!(a.wasted_conflicts, 1515);
        assert_eq!(a.learnt_imported, 1616);
        assert_eq!(a.learnt_discarded, 1717);
        assert_eq!(
            a.portfolio_winner,
            Some(2),
            "a later race's winner overwrites; absorbing a non-portfolio \
             run must not erase it"
        );
        a.absorb(&SolverStats::default());
        assert_eq!(a.portfolio_winner, Some(2));
        let shown = a.to_string();
        for needle in [
            "shared_exported=1313",
            "shared_imported=1414",
            "wasted_conflicts=1515",
            "learnt_imported=1616",
            "learnt_discarded=1717",
            "portfolio_winner=2",
        ] {
            assert!(shown.contains(needle), "{needle} missing from {shown}");
        }
    }
}
