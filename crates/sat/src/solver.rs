//! The CDCL search engine.

use crate::heap::ActivityHeap;
use crate::{ClauseRef, LBool, Lit, Var};
use std::fmt;

const VAR_RESCALE_LIMIT: f64 = 1e100;
const VAR_RESCALE_FACTOR: f64 = 1e-100;
const CLA_RESCALE_LIMIT: f64 = 1e20;
const CLA_RESCALE_FACTOR: f64 = 1e-20;

/// Outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with
    /// [`Solver::model_value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted before a decision was reached.
    Unknown,
}

/// Cumulative solver statistics, exposed for the benchmark harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of unit propagations performed.
    pub propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learned clauses currently in the database.
    pub learnts: u64,
    /// Number of learned clauses deleted by database reduction.
    pub deleted: u64,
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decisions={} propagations={} conflicts={} restarts={} learnts={} deleted={}",
            self.decisions,
            self.propagations,
            self.conflicts,
            self.restarts,
            self.learnts,
            self.deleted
        )
    }
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    removed: bool,
    activity: f64,
}

#[derive(Debug, Clone, Copy)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

/// Incremental CDCL SAT solver.
///
/// See the [crate-level documentation](crate) for the feature list and a
/// usage example. A single instance can be reused across many
/// [`Solver::solve_with`] calls with different assumptions; clauses may be
/// added between calls (the intended BMC workflow).
#[derive(Debug, Clone)]
pub struct Solver {
    clauses: Vec<Clause>,
    free_slots: Vec<usize>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    var_decay: f64,
    heap: ActivityHeap,
    phase: Vec<bool>,
    cla_inc: f64,
    cla_decay: f64,
    ok: bool,
    model: Vec<bool>,
    has_model: bool,
    seen: Vec<bool>,
    max_learnts: f64,
    conflict_budget: Option<u64>,
    restarts_enabled: bool,
    decision_heuristic: bool,
    stats: SolverStats,
    num_learnts: u64,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    #[must_use]
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            free_slots: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            var_decay: 0.95,
            heap: ActivityHeap::new(),
            phase: Vec::new(),
            cla_inc: 1.0,
            cla_decay: 0.999,
            ok: true,
            model: Vec::new(),
            has_model: false,
            seen: Vec::new(),
            max_learnts: 0.0,
            conflict_budget: None,
            restarts_enabled: true,
            decision_heuristic: true,
            stats: SolverStats::default(),
            num_learnts: 0,
        }
    }

    /// Number of variables created so far.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of clauses currently in the database (original + learned,
    /// excluding deleted).
    #[must_use]
    pub fn num_clauses(&self) -> usize {
        self.clauses.len() - self.free_slots.len()
    }

    /// Cumulative search statistics.
    #[must_use]
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Limits the next [`Solver::solve`]/[`Solver::solve_with`] call to at
    /// most `budget` conflicts; `None` removes the limit. When the budget
    /// is exhausted the call returns [`SolveResult::Unknown`].
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    /// Enables or disables Luby restarts (ablation hook; enabled by
    /// default).
    pub fn set_restarts_enabled(&mut self, enabled: bool) {
        self.restarts_enabled = enabled;
    }

    /// Enables or disables the VSIDS decision heuristic (ablation hook;
    /// enabled by default). When disabled, decisions pick the lowest
    /// unassigned variable index.
    pub fn set_decision_heuristic(&mut self, enabled: bool) {
        self.decision_heuristic = enabled;
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(u32::try_from(self.assigns.len()).expect("too many variables"));
        self.assigns.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.model.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.grow(self.assigns.len());
        self.heap.insert(v.index(), &self.activity);
        v
    }

    /// Creates `n` fresh variables and returns them in order.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    #[inline]
    fn value_lit(&self, l: Lit) -> LBool {
        match self.assigns[l.var().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if l.is_positive() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
            LBool::False => {
                if l.is_positive() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
        }
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause. Returns `false` if the solver is now known
    /// unsatisfiable at the top level (the clause or its unit consequences
    /// contradict previously added clauses).
    ///
    /// Duplicate literals are removed, tautologies are ignored, and
    /// literals already false at level 0 are dropped.
    ///
    /// # Panics
    ///
    /// Panics if called while the solver is not at decision level 0
    /// (i.e. from inside a search callback — not possible through the
    /// public API) or if a literal's variable was not created by this
    /// solver.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        assert_eq!(self.decision_level(), 0, "clauses must be added at level 0");
        if !self.ok {
            return false;
        }
        let mut ls: Vec<Lit> = lits.into_iter().collect();
        for &l in &ls {
            assert!(
                l.var().index() < self.num_vars(),
                "literal {l} uses an unknown variable"
            );
        }
        ls.sort_unstable();
        ls.dedup();
        // Tautology / level-0 simplification.
        let mut out: Vec<Lit> = Vec::with_capacity(ls.len());
        for (i, &l) in ls.iter().enumerate() {
            if i + 1 < ls.len() && ls[i + 1] == !l {
                return true; // l ∨ ¬l: tautology
            }
            match self.value_lit(l) {
                LBool::True if self.level[l.var().index()] == 0 => return true,
                LBool::False if self.level[l.var().index()] == 0 => {}
                _ => out.push(l),
            }
        }
        match out.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(out[0], None);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.alloc_clause(out, false);
                true
            }
        }
    }

    fn alloc_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let clause = Clause {
            lits,
            learnt,
            removed: false,
            activity: 0.0,
        };
        let cref = if let Some(slot) = self.free_slots.pop() {
            self.clauses[slot] = clause;
            ClauseRef::new(slot)
        } else {
            self.clauses.push(clause);
            ClauseRef::new(self.clauses.len() - 1)
        };
        self.attach(cref);
        if learnt {
            self.num_learnts += 1;
            self.stats.learnts = self.num_learnts;
        }
        cref
    }

    fn attach(&mut self, cref: ClauseRef) {
        let (l0, l1) = {
            let c = &self.clauses[cref.index()];
            (c.lits[0], c.lits[1])
        };
        self.watches[(!l0).index()].push(Watcher {
            cref,
            blocker: l1,
        });
        self.watches[(!l1).index()].push(Watcher {
            cref,
            blocker: l0,
        });
    }

    fn detach(&mut self, cref: ClauseRef) {
        let (l0, l1) = {
            let c = &self.clauses[cref.index()];
            (c.lits[0], c.lits[1])
        };
        self.watches[(!l0).index()].retain(|w| w.cref != cref);
        self.watches[(!l1).index()].retain(|w| w.cref != cref);
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.value_lit(l), LBool::Undef);
        let v = l.var().index();
        self.assigns[v] = LBool::from_bool(l.is_positive());
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut i = 0;
            'watchers: while i < self.watches[p.index()].len() {
                let Watcher { cref, blocker } = self.watches[p.index()][i];
                // Fast path: blocker already true.
                if self.value_lit(blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                let false_lit = !p;
                // Normalize: ensure false_lit is at position 1.
                {
                    let c = &mut self.clauses[cref.index()];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], false_lit);
                }
                let first = self.clauses[cref.index()].lits[0];
                if first != blocker && self.value_lit(first) == LBool::True {
                    // Clause satisfied; update blocker.
                    self.watches[p.index()][i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.clauses[cref.index()].lits.len();
                for k in 2..len {
                    let lk = self.clauses[cref.index()].lits[k];
                    if self.value_lit(lk) != LBool::False {
                        self.clauses[cref.index()].lits.swap(1, k);
                        self.watches[p.index()].swap_remove(i);
                        self.watches[(!lk).index()].push(Watcher {
                            cref,
                            blocker: first,
                        });
                        continue 'watchers;
                    }
                }
                // No new watch: clause is unit or conflicting.
                if self.value_lit(first) == LBool::False {
                    self.qhead = self.trail.len();
                    return Some(cref);
                }
                self.unchecked_enqueue(first, Some(cref));
                i += 1;
            }
        }
        None
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > VAR_RESCALE_LIMIT {
            for a in self.activity.iter_mut() {
                *a *= VAR_RESCALE_FACTOR;
            }
            self.var_inc *= VAR_RESCALE_FACTOR;
            self.heap.rebuild(&self.activity);
        }
        self.heap.update(v, &self.activity);
    }

    fn decay_var_activity(&mut self) {
        self.var_inc /= self.var_decay;
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref.index()];
        if !c.learnt {
            return;
        }
        c.activity += self.cla_inc;
        if c.activity > CLA_RESCALE_LIMIT {
            for cl in self.clauses.iter_mut() {
                if cl.learnt {
                    cl.activity *= CLA_RESCALE_FACTOR;
                }
            }
            self.cla_inc *= CLA_RESCALE_FACTOR;
        }
    }

    fn decay_clause_activity(&mut self) {
        self.cla_inc /= self.cla_decay;
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, conflict: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut cref = conflict;

        loop {
            self.bump_clause(cref);
            let start = usize::from(p.is_some());
            let lits: Vec<Lit> = self.clauses[cref.index()].lits[start..].to_vec();
            for q in lits {
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(v);
                    if self.level[v] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            let v = lit.var().index();
            self.seen[v] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !lit;
                break;
            }
            cref = self.reason[v].expect("non-decision literal has a reason");
            p = Some(lit);
        }

        // Clause minimization: drop literals implied by the rest.
        let mut minimized = vec![learnt[0]];
        for &l in &learnt[1..] {
            if !self.literal_redundant(l) {
                minimized.push(l);
            }
        }
        // Clear seen flags.
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }

        // Find backjump level: the max level among non-asserting literals.
        let bt = if minimized.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..minimized.len() {
                if self.level[minimized[i].var().index()]
                    > self.level[minimized[max_i].var().index()]
                {
                    max_i = i;
                }
            }
            minimized.swap(1, max_i);
            self.level[minimized[1].var().index()]
        };
        (minimized, bt)
    }

    /// Local redundancy check: a literal is redundant if it has a reason
    /// clause all of whose other literals are already in the learned
    /// clause (seen) or assigned at level 0.
    fn literal_redundant(&self, l: Lit) -> bool {
        let v = l.var().index();
        let Some(r) = self.reason[v] else {
            return false;
        };
        self.clauses[r.index()].lits.iter().all(|&q| {
            q.var() == l.var()
                || self.seen[q.var().index()]
                || self.level[q.var().index()] == 0
        })
    }

    fn backtrack_to(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level as usize];
        for i in (bound..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().index();
            self.assigns[v] = LBool::Undef;
            self.phase[v] = l.is_positive();
            self.reason[v] = None;
            if !self.heap.contains(v) {
                self.heap.insert(v, &self.activity);
            }
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(level as usize);
        self.qhead = bound;
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        if self.decision_heuristic {
            while let Some(v) = self.heap.pop_max(&self.activity) {
                if self.assigns[v] == LBool::Undef {
                    return Some(Var(v as u32));
                }
            }
            None
        } else {
            (0..self.num_vars())
                .find(|&v| self.assigns[v] == LBool::Undef)
                .map(|v| Var(v as u32))
        }
    }

    fn reduce_db(&mut self) {
        // Collect learnt clause refs sorted by activity (ascending).
        let mut learnts: Vec<(f64, usize)> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt && !c.removed && c.lits.len() > 2)
            .map(|(i, c)| (c.activity, i))
            .collect();
        learnts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut locked = vec![false; self.clauses.len()];
        for r in self.reason.iter().flatten() {
            locked[r.index()] = true;
        }
        let target = learnts.len() / 2;
        let mut removed = 0usize;
        for &(_, idx) in learnts.iter().take(target) {
            let cref = ClauseRef::new(idx);
            if locked[idx] {
                continue;
            }
            self.detach(cref);
            self.clauses[idx].removed = true;
            self.clauses[idx].lits.clear();
            self.free_slots.push(idx);
            removed += 1;
        }
        self.num_learnts -= removed as u64;
        self.stats.deleted += removed as u64;
        self.stats.learnts = self.num_learnts;
    }

    /// Solves the current formula with no assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with(&[])
    }

    /// Solves the current formula under the given assumption literals.
    ///
    /// Assumptions are enforced as pseudo-decisions: a result of
    /// [`SolveResult::Unsat`] means the formula is unsatisfiable *under
    /// these assumptions* (the formula itself may still be satisfiable).
    /// The solver always returns at decision level 0, ready for more
    /// clauses or another call.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.has_model = false;
        if !self.ok {
            return SolveResult::Unsat;
        }
        for &a in assumptions {
            assert!(
                a.var().index() < self.num_vars(),
                "assumption {a} uses an unknown variable"
            );
        }
        // Track the growing clause database (incremental BMC keeps adding
        // frames): the learnt budget must scale with it or the solver
        // thrashes in back-to-back reductions.
        self.max_learnts = self
            .max_learnts
            .max((self.num_clauses() as f64 / 3.0).max(100.0));
        let budget_start = self.stats.conflicts;
        let mut restart_count = 0u64;
        let result = loop {
            let conflicts_allowed = if self.restarts_enabled {
                100 * luby(2.0, restart_count) as u64
            } else {
                u64::MAX
            };
            match self.search(conflicts_allowed, assumptions, budget_start) {
                SearchOutcome::Sat => break SolveResult::Sat,
                SearchOutcome::Unsat => break SolveResult::Unsat,
                SearchOutcome::BudgetExhausted => break SolveResult::Unknown,
                SearchOutcome::Restart => {
                    restart_count += 1;
                    self.stats.restarts += 1;
                }
            }
        };
        if result == SolveResult::Sat {
            for v in 0..self.num_vars() {
                self.model[v] = self.assigns[v] == LBool::True;
            }
            self.has_model = true;
        }
        self.backtrack_to(0);
        result
    }

    fn search(
        &mut self,
        conflicts_allowed: u64,
        assumptions: &[Lit],
        budget_start: u64,
    ) -> SearchOutcome {
        let mut conflicts_here = 0u64;
        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SearchOutcome::Unsat;
                }
                let (learnt, bt_level) = self.analyze(conflict);
                self.backtrack_to(bt_level);
                if learnt.len() == 1 {
                    self.unchecked_enqueue(learnt[0], None);
                } else {
                    let cref = self.alloc_clause(learnt.clone(), true);
                    self.unchecked_enqueue(learnt[0], Some(cref));
                }
                self.decay_var_activity();
                self.decay_clause_activity();
                if let Some(budget) = self.conflict_budget {
                    if self.stats.conflicts - budget_start >= budget {
                        self.backtrack_to(0);
                        return SearchOutcome::BudgetExhausted;
                    }
                }
            } else {
                if conflicts_here >= conflicts_allowed {
                    self.backtrack_to(0);
                    return SearchOutcome::Restart;
                }
                if self.num_learnts as f64 > self.max_learnts + self.trail.len() as f64 {
                    self.reduce_db();
                    self.max_learnts *= 1.1;
                }
                // Re-assert assumptions as pseudo-decisions.
                let mut next_decision: Option<Lit> = None;
                while (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.value_lit(a) {
                        LBool::True => {
                            // Already implied; open an empty decision level.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            // Conflicts with current forced assignment.
                            return SearchOutcome::Unsat;
                        }
                        LBool::Undef => {
                            next_decision = Some(a);
                            break;
                        }
                    }
                }
                let decision = match next_decision {
                    Some(a) => a,
                    None => match self.pick_branch_var() {
                        Some(v) => v.lit(self.phase[v.index()]),
                        None => return SearchOutcome::Sat,
                    },
                };
                self.stats.decisions += 1;
                self.trail_lim.push(self.trail.len());
                self.unchecked_enqueue(decision, None);
            }
        }
    }

    /// The value of `v` in the most recent satisfying assignment, or
    /// `None` if the last solve did not return [`SolveResult::Sat`].
    #[must_use]
    pub fn model_value(&self, v: Var) -> Option<bool> {
        if self.has_model {
            Some(self.model[v.index()])
        } else {
            None
        }
    }

    /// The value of literal `l` in the most recent satisfying assignment.
    #[must_use]
    pub fn model_lit(&self, l: Lit) -> Option<bool> {
        self.model_value(l.var())
            .map(|b| b == l.is_positive())
    }
}

enum SearchOutcome {
    Sat,
    Unsat,
    Restart,
    BudgetExhausted,
}

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, …
fn luby(y: f64, mut x: u64) -> f64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    y.powi(seq as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(s: &mut Solver, n: usize) -> Vec<Var> {
        s.new_vars(n)
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn unit_clauses() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        assert!(s.add_clause([v[0].pos()]));
        assert!(s.add_clause([v[1].neg()]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(v[0]), Some(true));
        assert_eq!(s.model_value(v[1]), Some(false));
        assert_eq!(s.model_lit(v[1].neg()), Some(true));
    }

    #[test]
    fn direct_contradiction() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        assert!(s.add_clause([v[0].pos()]));
        assert!(!s.add_clause([v[0].neg()]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn tautology_ignored() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        assert!(s.add_clause([v[0].pos(), v[0].neg()]));
        assert_eq!(s.num_clauses(), 0);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn duplicate_literals_deduped() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        assert!(s.add_clause([v[0].pos(), v[0].pos(), v[1].pos()]));
        assert!(s.add_clause([v[0].neg()]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(v[1]), Some(true));
    }

    #[test]
    fn implication_chain() {
        // x0 ∧ (x_i → x_{i+1}) forces all true.
        let mut s = Solver::new();
        let v = vars(&mut s, 20);
        assert!(s.add_clause([v[0].pos()]));
        for i in 0..19 {
            assert!(s.add_clause([v[i].neg(), v[i + 1].pos()]));
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        for x in &v {
            assert_eq!(s.model_value(*x), Some(true));
        }
    }

    #[test]
    fn xor_constraints_unsat() {
        // a ⊕ b, b ⊕ c, a ⊕ c is UNSAT (odd cycle).
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        let xor = |s: &mut Solver, a: Var, b: Var| {
            s.add_clause([a.pos(), b.pos()]);
            s.add_clause([a.neg(), b.neg()]);
        };
        xor(&mut s, v[0], v[1]);
        xor(&mut s, v[1], v[2]);
        xor(&mut s, v[0], v[2]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_unsat() {
        // PHP(4,3): 4 pigeons in 3 holes — classically hard for resolution
        // at large sizes, easy at this size, and a good conflict-analysis
        // exerciser.
        let (pigeons, holes) = (4usize, 3usize);
        let mut s = Solver::new();
        let mut p = vec![vec![Var(0); holes]; pigeons];
        for row in p.iter_mut() {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(row.iter().map(|v| v.pos()));
        }
        for h in 0..holes {
            for i in 0..pigeons {
                for j in (i + 1)..pigeons {
                    s.add_clause([p[i][h].neg(), p[j][h].neg()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn php_5_4_unsat() {
        let (pigeons, holes) = (5usize, 4usize);
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..pigeons).map(|_| s.new_vars(holes)).collect();
        for row in &p {
            s.add_clause(row.iter().map(|v| v.pos()));
        }
        for h in 0..holes {
            for i in 0..pigeons {
                for j in (i + 1)..pigeons {
                    s.add_clause([p[i][h].neg(), p[j][h].neg()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_basic() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause([v[0].neg(), v[1].pos()]); // a → b
        assert_eq!(s.solve_with(&[v[0].pos()]), SolveResult::Sat);
        assert_eq!(s.model_value(v[1]), Some(true));
        assert_eq!(s.solve_with(&[v[0].pos(), v[1].neg()]), SolveResult::Unsat);
        // Solver remains usable and the formula itself is still SAT.
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn assumptions_conflicting_pair() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        assert_eq!(s.solve_with(&[v[0].pos(), v[0].neg()]), SolveResult::Unsat);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn incremental_adding_between_solves() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause([v[0].pos(), v[1].pos(), v[2].pos()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause([v[0].neg()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause([v[1].neg()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(v[2]), Some(true));
        s.add_clause([v[2].neg()]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        // Once globally UNSAT, stays UNSAT.
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn conflict_budget_reports_unknown() {
        // A PHP instance large enough to need > 1 conflict.
        let (pigeons, holes) = (6usize, 5usize);
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..pigeons).map(|_| s.new_vars(holes)).collect();
        for row in &p {
            s.add_clause(row.iter().map(|v| v.pos()));
        }
        for h in 0..holes {
            for i in 0..pigeons {
                for j in (i + 1)..pigeons {
                    s.add_clause([p[i][h].neg(), p[j][h].neg()]);
                }
            }
        }
        s.set_conflict_budget(Some(1));
        assert_eq!(s.solve(), SolveResult::Unknown);
        s.set_conflict_budget(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn ablation_switches_do_not_change_answers() {
        for (restarts, heuristic) in [(true, false), (false, true), (false, false)] {
            let mut s = Solver::new();
            s.set_restarts_enabled(restarts);
            s.set_decision_heuristic(heuristic);
            let p: Vec<Vec<Var>> = (0..4).map(|_| s.new_vars(3)).collect();
            for row in &p {
                s.add_clause(row.iter().map(|v| v.pos()));
            }
            for h in 0..3 {
                for i in 0..4 {
                    for j in (i + 1)..4 {
                        s.add_clause([p[i][h].neg(), p[j][h].neg()]);
                    }
                }
            }
            assert_eq!(s.solve(), SolveResult::Unsat);
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let got: Vec<f64> = (0..9).map(|i| luby(2.0, i)).collect();
        assert_eq!(got, vec![1.0, 1.0, 2.0, 1.0, 1.0, 2.0, 4.0, 1.0, 1.0]);
    }

    #[test]
    fn stats_display() {
        let s = Solver::new();
        let text = s.stats().to_string();
        assert!(text.contains("decisions=0"));
        assert!(text.contains("conflicts=0"));
    }
}
