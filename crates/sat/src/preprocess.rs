//! SatELite-style CNF preprocessing: occurrence-list-based backward
//! subsumption, self-subsuming resolution, and bounded variable
//! elimination.
//!
//! The preprocessor operates on an extracted copy of the solver's
//! irredundant clauses (see `Solver::preprocess` for the extract/rebuild
//! protocol). Unit clauses need no special pass: a unit `{l}` in the
//! subsumption queue deletes every clause containing `l` and strengthens
//! every clause containing `¬l`, which *is* boolean constraint
//! propagation, and afterwards `l`'s variable is pure and falls to
//! variable elimination with the unit stored in its record.
//!
//! Every eliminated variable leaves an [`ElimRecord`] holding the clauses
//! it was resolved out of. Model reconstruction walks the records in
//! reverse elimination order and flips the pivot wherever a stored clause
//! is unsatisfied — the MiniSat `extendModel` scheme — so witnesses stay
//! valid over the *original* clause set even though search never saw the
//! eliminated variables.
//!
//! *Frozen* variables (assumptions of the current solve call, the BMC
//! frame interface, variables already assigned at level 0) are never
//! eliminated; they may reappear in later clauses or queries, which the
//! solver handles by reactivating eliminated variables on contact.

use crate::budget::ArmedBudget;
use crate::{Lit, Var};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A variable eliminated by resolution, with the clauses it was resolved
/// out of (needed to extend a model of the reduced formula back to the
/// original one).
#[derive(Debug, Clone)]
pub(crate) struct ElimRecord {
    pub var: Var,
    pub clauses: Vec<Vec<Lit>>,
}

/// Result of one preprocessing run.
#[derive(Debug, Default)]
pub(crate) struct PreprocessOutcome {
    /// The simplified irredundant clause set (sorted, deduplicated
    /// literals; may contain units the rebuild must enqueue).
    pub clauses: Vec<Vec<Lit>>,
    /// Eliminated variables in elimination order.
    pub eliminated: Vec<ElimRecord>,
    /// Clauses deleted by subsumption plus literals removed by
    /// self-subsuming resolution.
    pub subsumed: u64,
    /// The empty clause was derived: the formula is unsatisfiable.
    pub unsat: bool,
    /// Variables pushed back onto the elimination queue because a
    /// neighbouring pivot's elimination changed their occurrence counts
    /// (SatELite re-enqueue).
    pub reenqueued: u64,
}

/// Skip variable elimination when either polarity occurs more often than
/// this (resolving dense variables explodes quadratically and they are
/// rarely worth removing). Pure literals (one side empty) are exempt.
const ELIM_OCC_LIMIT: usize = 12;
/// Never produce a resolvent longer than this.
const RESOLVENT_LEN_LIMIT: usize = 20;
/// Budget-poll granularity, in candidate inspections.
const POLL_INTERVAL: u64 = 8192;

struct PClause {
    lits: Vec<Lit>,
    sig: u64,
    deleted: bool,
}

fn lit_bit(l: Lit) -> u64 {
    1u64 << (l.0 % 64)
}

fn signature(lits: &[Lit]) -> u64 {
    lits.iter().fold(0, |s, &l| s | lit_bit(l))
}

enum SubRes {
    No,
    Subsumed,
    /// `C \ {l} ⊆ D` and `¬l ∈ D`: remove the returned literal (`¬l`)
    /// from `D`.
    Strengthen(Lit),
}

/// Subset check of sorted, duplicate-free clauses allowing at most one
/// polarity flip.
fn subsume_check(c: &[Lit], d: &[Lit]) -> SubRes {
    debug_assert!(c.len() <= d.len());
    let mut flipped: Option<Lit> = None;
    let mut j = 0;
    'outer: for &cl in c {
        while j < d.len() {
            let dl = d[j];
            if dl.var() == cl.var() {
                j += 1;
                if dl == cl {
                    continue 'outer;
                }
                if flipped.is_some() {
                    return SubRes::No;
                }
                flipped = Some(dl);
                continue 'outer;
            }
            if dl.var() > cl.var() {
                return SubRes::No;
            }
            j += 1;
        }
        return SubRes::No;
    }
    match flipped {
        None => SubRes::Subsumed,
        Some(l) => SubRes::Strengthen(l),
    }
}

/// Resolvent of sorted clauses `a` (containing the pivot positively) and
/// `b` (negatively) on `pivot`; `None` if it is a tautology.
fn resolve(a: &[Lit], b: &[Lit], pivot: Var) -> Option<Vec<Lit>> {
    let mut out: Vec<Lit> = Vec::with_capacity(a.len() + b.len() - 2);
    let mut ia = a.iter().copied().filter(|l| l.var() != pivot).peekable();
    let mut ib = b.iter().copied().filter(|l| l.var() != pivot).peekable();
    loop {
        match (ia.peek().copied(), ib.peek().copied()) {
            (None, None) => break,
            (Some(x), None) => {
                out.push(x);
                ia.next();
            }
            (None, Some(y)) => {
                out.push(y);
                ib.next();
            }
            (Some(x), Some(y)) => {
                if x == y {
                    out.push(x);
                    ia.next();
                    ib.next();
                } else if x.var() == y.var() {
                    return None; // x ∨ ¬x: tautology
                } else if x < y {
                    out.push(x);
                    ia.next();
                } else {
                    out.push(y);
                    ib.next();
                }
            }
        }
    }
    Some(out)
}

pub(crate) struct Preprocessor {
    clauses: Vec<PClause>,
    /// Clause indices per literal index; kept exact (entries are removed
    /// on clause deletion/strengthening) so BVE occurrence counts are
    /// trustworthy.
    occ: Vec<Vec<u32>>,
    /// Never eliminate these (assumptions, frame interface, level-0
    /// assigned, already-eliminated). Eliminated pivots are added as the
    /// run progresses.
    frozen: Vec<bool>,
    queue: VecDeque<u32>,
    in_queue: Vec<bool>,
    records: Vec<ElimRecord>,
    subsumed: u64,
    unsat: bool,
    steps: u64,
    reenqueued: u64,
}

impl Preprocessor {
    pub(crate) fn new(num_vars: usize, cnf: Vec<Vec<Lit>>, frozen: Vec<bool>) -> Self {
        debug_assert_eq!(frozen.len(), num_vars);
        let mut pp = Preprocessor {
            clauses: Vec::with_capacity(cnf.len()),
            occ: vec![Vec::new(); 2 * num_vars],
            frozen,
            queue: VecDeque::with_capacity(cnf.len()),
            in_queue: Vec::with_capacity(cnf.len()),
            records: Vec::new(),
            subsumed: 0,
            unsat: false,
            steps: 0,
            reenqueued: 0,
        };
        for mut lits in cnf {
            lits.sort_unstable();
            lits.dedup();
            pp.insert_clause(lits);
        }
        pp
    }

    /// Runs subsumption + self-subsuming resolution to fixpoint, then
    /// bounded variable elimination ordered by an occurrence-count
    /// priority queue with neighbour re-enqueue (each elimination feeds
    /// its resolvents back through subsumption). Polls `armed` at a
    /// coarse interval; on a tripped budget the partial simplification is
    /// returned — every transformation is individually sound, so stopping
    /// anywhere is safe.
    pub(crate) fn run(mut self, armed: &ArmedBudget) -> PreprocessOutcome {
        if !self.subsumption_fixpoint(armed) {
            return self.finish();
        }
        if self.unsat {
            return self.finish();
        }
        self.eliminate_variables(armed);
        self.finish()
    }

    fn insert_clause(&mut self, lits: Vec<Lit>) {
        if lits.is_empty() {
            self.unsat = true;
            return;
        }
        // Tautologies never help any later step; drop them up front.
        if lits.windows(2).any(|w| w[1] == !w[0]) {
            return;
        }
        let ci = self.clauses.len() as u32;
        for &l in &lits {
            self.occ[l.index()].push(ci);
        }
        self.clauses.push(PClause {
            sig: signature(&lits),
            lits,
            deleted: false,
        });
        self.in_queue.push(true);
        self.queue.push_back(ci);
    }

    fn delete_clause(&mut self, ci: u32) {
        let c = &mut self.clauses[ci as usize];
        c.deleted = true;
        let lits = std::mem::take(&mut c.lits);
        for &l in &lits {
            let list = &mut self.occ[l.index()];
            if let Some(p) = list.iter().position(|&x| x == ci) {
                list.swap_remove(p);
            }
        }
    }

    fn enqueue(&mut self, ci: u32) {
        if !self.in_queue[ci as usize] {
            self.in_queue[ci as usize] = true;
            self.queue.push_back(ci);
        }
    }

    /// Drains the subsumption queue. Returns `false` if the armed budget
    /// tripped mid-way.
    fn subsumption_fixpoint(&mut self, armed: &ArmedBudget) -> bool {
        while let Some(ci) = self.queue.pop_front() {
            self.in_queue[ci as usize] = false;
            if self.clauses[ci as usize].deleted || self.unsat {
                continue;
            }
            if !self.poll(armed) {
                return false;
            }
            // Scan the occurrence lists of the least-occurring variable of
            // C: any D with C ⊆ D contains every literal of C, and any D
            // strengthenable by C on flip-literal l contains either a
            // literal of C or its negation — both polarities are scanned.
            let best = self.clauses[ci as usize]
                .lits
                .iter()
                .copied()
                .min_by_key(|&l| self.occ[l.index()].len() + self.occ[(!l).index()].len())
                .expect("clauses are never empty here");
            let mut candidates: Vec<u32> = self.occ[best.index()].clone();
            candidates.extend_from_slice(&self.occ[(!best).index()]);
            for di in candidates {
                if di == ci
                    || self.clauses[di as usize].deleted
                    || self.clauses[ci as usize].deleted
                {
                    continue;
                }
                self.steps += 1;
                let (c, d) = (&self.clauses[ci as usize], &self.clauses[di as usize]);
                if d.lits.len() < c.lits.len() || (c.sig & !d.sig).count_ones() > 1 {
                    continue;
                }
                match subsume_check(&c.lits, &d.lits) {
                    SubRes::No => {}
                    SubRes::Subsumed => {
                        self.delete_clause(di);
                        self.subsumed += 1;
                    }
                    SubRes::Strengthen(dl) => {
                        self.strengthen(di, dl);
                        if self.unsat {
                            return true;
                        }
                    }
                }
            }
        }
        true
    }

    /// Removes `dl` from clause `di` (self-subsuming resolution step).
    fn strengthen(&mut self, di: u32, dl: Lit) {
        let c = &mut self.clauses[di as usize];
        let p = c
            .lits
            .iter()
            .position(|&x| x == dl)
            .expect("literal present");
        c.lits.remove(p);
        c.sig = signature(&c.lits);
        self.subsumed += 1;
        let list = &mut self.occ[dl.index()];
        if let Some(p) = list.iter().position(|&x| x == di) {
            list.swap_remove(p);
        }
        if self.clauses[di as usize].lits.is_empty() {
            self.unsat = true;
            return;
        }
        self.enqueue(di);
    }

    /// Estimated elimination cost of a variable: the product of its
    /// positive and negative occurrence counts (the number of resolvent
    /// candidates the elimination would have to inspect).
    fn elim_cost(&self, var: Var) -> u64 {
        self.occ[var.pos().index()].len() as u64 * self.occ[var.neg().index()].len() as u64
    }

    /// Bounded variable elimination driven by an occurrence-count
    /// priority queue (the SatELite heuristic): always attack the
    /// cheapest pivot first, and after each elimination re-enqueue the
    /// pivot's neighbours, whose occurrence counts — and therefore
    /// elimination costs — just changed. Variables whose elimination only
    /// becomes profitable once a neighbour is gone are retried instead of
    /// being lost to a single ordered pass. A subsumption fixpoint runs
    /// after each elimination.
    fn eliminate_variables(&mut self, armed: &ArmedBudget) {
        let num_vars = self.frozen.len();
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        let mut queued = vec![false; num_vars];
        for v in 0..num_vars as u32 {
            if !self.frozen[v as usize] {
                heap.push(Reverse((self.elim_cost(Var(v)), v)));
                queued[v as usize] = true;
            }
        }
        while let Some(Reverse((cost, v))) = heap.pop() {
            queued[v as usize] = false;
            if self.unsat {
                return;
            }
            if self.frozen[v as usize] {
                continue;
            }
            if !self.poll(armed) {
                return;
            }
            let var = Var(v);
            // Heap entries go stale when other eliminations touch this
            // variable's clauses. If it became more expensive, defer it
            // behind genuinely cheap pivots. (Costs only change through
            // eliminations, so each variable is deferred at most once per
            // elimination — this terminates.)
            let current = self.elim_cost(var);
            if current > cost {
                queued[v as usize] = true;
                heap.push(Reverse((current, v)));
                continue;
            }
            let pos = self.occ[var.pos().index()].clone();
            let neg = self.occ[var.neg().index()].clone();
            if pos.is_empty() && neg.is_empty() {
                continue; // unconstrained: nothing to eliminate
            }
            let pure = pos.is_empty() || neg.is_empty();
            if !pure && (pos.len() > ELIM_OCC_LIMIT || neg.len() > ELIM_OCC_LIMIT) {
                continue;
            }
            // Gather resolvents; bail if elimination would grow the
            // clause set.
            let mut resolvents: Vec<Vec<Lit>> = Vec::new();
            let mut acceptable = true;
            'pairs: for &pi in &pos {
                for &ni in &neg {
                    self.steps += 1;
                    if let Some(r) = resolve(
                        &self.clauses[pi as usize].lits,
                        &self.clauses[ni as usize].lits,
                        var,
                    ) {
                        if r.len() > RESOLVENT_LEN_LIMIT
                            || resolvents.len() >= pos.len() + neg.len()
                        {
                            acceptable = false;
                            break 'pairs;
                        }
                        resolvents.push(r);
                    }
                }
            }
            if !acceptable {
                continue;
            }
            // Commit: record and remove the pivot's clauses, add the
            // resolvents, and re-run subsumption over them.
            let mut record = ElimRecord {
                var,
                clauses: Vec::with_capacity(pos.len() + neg.len()),
            };
            for &ci in pos.iter().chain(neg.iter()) {
                record.clauses.push(self.clauses[ci as usize].lits.clone());
                self.delete_clause(ci);
            }
            self.frozen[v as usize] = true; // pivot is gone for this run
            let mut neighbours: Vec<u32> = record
                .clauses
                .iter()
                .flat_map(|c| c.iter())
                .map(|l| l.var().0)
                .filter(|&u| u != v)
                .collect();
            neighbours.sort_unstable();
            neighbours.dedup();
            self.records.push(record);
            for r in resolvents {
                self.insert_clause(r);
                if self.unsat {
                    return;
                }
            }
            if !self.subsumption_fixpoint(armed) {
                return;
            }
            // Re-enqueue the neighbourhood with fresh costs: every
            // variable that shared a clause with the pivot just had its
            // occurrence counts rewritten by the resolvent swap.
            for u in neighbours {
                if !self.frozen[u as usize] && !queued[u as usize] {
                    queued[u as usize] = true;
                    self.reenqueued += 1;
                    heap.push(Reverse((self.elim_cost(Var(u)), u)));
                }
            }
        }
    }

    fn poll(&mut self, armed: &ArmedBudget) -> bool {
        self.steps += 1;
        if self.steps.is_multiple_of(POLL_INTERVAL) && armed.poll().is_some() {
            return false;
        }
        true
    }

    fn finish(self) -> PreprocessOutcome {
        let clauses = self
            .clauses
            .into_iter()
            .filter(|c| !c.deleted)
            .map(|c| c.lits)
            .collect();
        PreprocessOutcome {
            clauses,
            eliminated: self.records,
            subsumed: self.subsumed,
            unsat: self.unsat,
            reenqueued: self.reenqueued,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(xs: &[i32]) -> Vec<Lit> {
        xs.iter()
            .map(|&x| Var(x.unsigned_abs() - 1).lit(x > 0))
            .collect()
    }

    fn run(num_vars: usize, cnf: &[&[i32]], frozen: &[u32]) -> PreprocessOutcome {
        let mut fr = vec![false; num_vars];
        for &v in frozen {
            fr[v as usize - 1] = true;
        }
        let cnf: Vec<Vec<Lit>> = cnf.iter().map(|c| lits(c)).collect();
        Preprocessor::new(num_vars, cnf, fr).run(&ArmedBudget::unlimited())
    }

    #[test]
    fn subsumption_removes_supersets() {
        let out = run(3, &[&[1, 2], &[1, 2, 3], &[1, 2, -3]], &[1, 2, 3]);
        assert!(!out.unsat);
        assert!(out.subsumed >= 2);
        assert_eq!(out.clauses, vec![lits(&[1, 2])]);
    }

    #[test]
    fn self_subsumption_strengthens() {
        // (1 ∨ 2) strengthens (1 ∨ ¬2 ∨ 3) to (1 ∨ 3).
        let out = run(3, &[&[1, 2], &[1, -2, 3]], &[1, 2, 3]);
        assert!(out.clauses.contains(&lits(&[1, 3])));
    }

    #[test]
    fn unit_performs_bcp_and_elimination() {
        // Unit 1 satisfies (1 ∨ 2), strengthens (¬1 ∨ 3) to (3); with
        // nothing frozen both pivots are then eliminated.
        let out = run(3, &[&[1], &[1, 2], &[-1, 3]], &[]);
        assert!(!out.unsat);
        assert!(out.clauses.is_empty());
        let pivots: Vec<Var> = out.eliminated.iter().map(|r| r.var).collect();
        assert!(pivots.contains(&Var(0)));
        assert!(pivots.contains(&Var(2)));
    }

    #[test]
    fn contradicting_units_are_unsat() {
        let out = run(1, &[&[1], &[-1]], &[]);
        assert!(out.unsat);
    }

    #[test]
    fn variable_elimination_records_clauses() {
        // Eliminate 2 from (1 ∨ 2)(¬2 ∨ 3): resolvent (1 ∨ 3).
        let out = run(3, &[&[1, 2], &[-2, 3]], &[1, 3]);
        assert!(!out.unsat);
        assert_eq!(out.eliminated.len(), 1);
        assert_eq!(out.eliminated[0].var, Var(1));
        assert_eq!(out.eliminated[0].clauses.len(), 2);
        assert_eq!(out.clauses, vec![lits(&[1, 3])]);
    }

    #[test]
    fn frozen_variables_survive() {
        let out = run(3, &[&[1, 2], &[-2, 3]], &[1, 2, 3]);
        assert!(out.eliminated.is_empty());
        assert_eq!(out.clauses.len(), 2);
    }

    #[test]
    fn tautological_resolvents_vanish() {
        // Eliminating 2 from (1 ∨ 2)(¬2 ∨ ¬1) yields only the tautology
        // (1 ∨ ¬1) → no clauses remain mentioning either variable, and 1
        // is then pure.
        let out = run(2, &[&[1, 2], &[-2, -1]], &[]);
        assert!(!out.unsat);
        assert!(out.clauses.is_empty());
    }

    #[test]
    fn resolve_merges_and_detects_tautologies() {
        let a = lits(&[1, 2, 5]);
        let b = lits(&[-2, 3, 5]);
        assert_eq!(resolve(&a, &b, Var(1)), Some(lits(&[1, 3, 5])));
        let c = lits(&[-2, -1]);
        assert_eq!(resolve(&a, &c, Var(1)), None);
    }

    #[test]
    fn elimination_reenqueues_neighbours_of_a_pivot() {
        // Vars: A=1, B=2, frozen f1..f20 = 3..22, g = 23, h = 24, h2 = 25.
        // Both pivots start with elimination cost 2 (pos·neg), so A (the
        // lower index) is popped first; its only resolvent
        // (c1 = (A ∨ f1..f20)) × (c2 = (¬A ∨ g)) has 21 literals
        // > RESOLVENT_LEN_LIMIT, so A is skipped and leaves the queue.
        // Eliminating B next rewrites (A ∨ B) into (A ∨ h)/(A ∨ h2) —
        // touching A's occurrences — which must push A back onto the
        // queue (where it is retried, skipped again, and counted).
        let fs: Vec<i32> = (3..=22).collect();
        let mut c1: Vec<i32> = vec![1];
        c1.extend(&fs);
        let c2 = [-1, 23];
        let c3 = [1, 2];
        let c4 = [-2, 24];
        let c5 = [-2, 25];
        let frozen: Vec<u32> = (3..=25).map(|v| v as u32).collect();
        let out = run(25, &[&c1, &c2, &c3, &c4, &c5], &frozen);
        assert!(!out.unsat);
        let pivots: Vec<Var> = out.eliminated.iter().map(|r| r.var).collect();
        assert_eq!(pivots, vec![Var(1)], "only B is eliminable");
        assert_eq!(
            out.reenqueued, 1,
            "A must be re-enqueued by B's elimination"
        );
        // A survives with its rewritten occurrences present.
        assert!(out.clauses.contains(&lits(&[1, 24])));
        assert!(out.clauses.contains(&lits(&[1, 25])));
    }

    #[test]
    fn queue_converges_on_chains() {
        // A chain 1→2→3→4 with nothing frozen collapses completely; the
        // re-enqueue logic must terminate and leave no eliminable pivot.
        let out = run(4, &[&[1, 2], &[-2, 3], &[-3, 4]], &[]);
        assert!(!out.unsat);
        assert!(out.clauses.is_empty());
        // Pure-literal cascades delete every clause; the last variable
        // ends up unconstrained (no occurrences), which is skipped, not
        // eliminated.
        assert_eq!(out.eliminated.len(), 3);
    }

    #[test]
    fn subsume_check_variants() {
        assert!(matches!(
            subsume_check(&lits(&[1, 2]), &lits(&[1, 2, 3])),
            SubRes::Subsumed
        ));
        assert!(matches!(
            subsume_check(&lits(&[1, 2]), &lits(&[1, -2, 3])),
            SubRes::Strengthen(l) if l == Var(1).neg()
        ));
        assert!(matches!(
            subsume_check(&lits(&[1, 4]), &lits(&[1, 2, 3])),
            SubRes::No
        ));
        assert!(matches!(
            subsume_check(&lits(&[1, -2]), &lits(&[-1, 2, 3])),
            SubRes::No
        ));
    }
}
