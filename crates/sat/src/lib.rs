//! A CDCL SAT solver — the decision engine underneath the A-QED bounded
//! model checker.
//!
//! The solver implements the standard modern architecture:
//!
//! * two-watched-literal propagation with blocker literals,
//! * flat-arena clause storage with copying garbage collection, and
//!   binary clauses inlined into the watch lists (propagation of a
//!   two-literal clause never touches clause memory),
//! * first-UIP conflict analysis with learned-clause minimization,
//! * EVSIDS variable activities on an indexed binary max-heap,
//! * phase saving,
//! * Luby-sequence restarts,
//! * periodic learned-clause database reduction, and
//! * incremental solving under assumptions (the BMC engine re-uses one
//!   solver instance across unrolling depths).
//!
//! Consumers access solving through the [`SatBackend`] trait, which
//! [`Solver`] implements alongside the logging/replay [`DimacsBackend`];
//! the bit-blaster and both model checkers are generic over it.
//!
//! # Examples
//!
//! ```
//! use aqed_sat::{Solver, SolveResult};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause([a.pos(), b.pos()]);   // a ∨ b
//! s.add_clause([a.neg()]);            // ¬a
//! assert_eq!(s.solve(), SolveResult::Sat);
//! assert_eq!(s.model_value(b), Some(true));
//! s.add_clause([b.neg()]);            // ¬b → UNSAT
//! assert_eq!(s.solve(), SolveResult::Unsat);
//! ```

mod alloc;
mod backend;
mod budget;
mod dimacs;
mod heap;
pub mod portfolio;
mod preprocess;
pub mod share;
mod signal;
mod solver;

pub use backend::{DimacsBackend, ReplayError, SatBackend};
pub use budget::{ArmedBudget, Budget, StopHandle, StopReason};
pub use dimacs::{parse_dimacs, ParseDimacsError};
pub use portfolio::PortfolioBackend;
pub use share::ClausePool;
pub use signal::stop_on_sigint;
pub use solver::{
    PhaseMode, PropagationReplay, RestartStrategy, SolveResult, Solver, SolverConfig, SolverStats,
};

use std::fmt;
use std::num::NonZeroU32;

/// A propositional variable. Created by [`Solver::new_var`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// The 0-based index of this variable.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a variable from its 0-based index. Only meaningful
    /// for indices of variables actually created in the target solver;
    /// consumers deserializing persisted clauses (warm-start learnt
    /// packs) are bounds-checked again at import time.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        Var(u32::try_from(index).expect("variable index fits u32"))
    }

    /// The positive literal of this variable.
    #[must_use]
    pub fn pos(self) -> Lit {
        Lit::new(self, true)
    }

    /// The negative literal of this variable.
    ///
    /// Deliberately a named method (MiniSat-style `v.neg()`), not
    /// `std::ops::Neg`: negating a *variable* yields a *literal*.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn neg(self) -> Lit {
        Lit::new(self, false)
    }

    /// The literal of this variable with the given polarity.
    #[must_use]
    pub fn lit(self, positive: bool) -> Lit {
        Lit::new(self, positive)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable or its negation.
///
/// Encoded as `var << 1 | sign` where `sign == 1` means negated, so
/// literals index watch lists directly. `repr(transparent)` over `u32`
/// lets the clause arena reinterpret its raw words as literal slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// Creates a literal from a variable and polarity (`true` = positive).
    #[must_use]
    pub fn new(var: Var, positive: bool) -> Self {
        Lit(var.0 << 1 | u32::from(!positive))
    }

    /// The underlying variable.
    #[must_use]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is positive (non-negated).
    #[must_use]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The index of this literal in watch lists (`2 * var + sign`).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "v{}", self.var().0)
        } else {
            write!(f, "!v{}", self.var().0)
        }
    }
}

/// Ternary assignment value used on the trail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LBool {
    True,
    False,
    Undef,
}

impl LBool {
    pub(crate) fn from_bool(b: bool) -> Self {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }
}

/// Reference to a clause in the solver's arena (niche-optimized so
/// `Option<ClauseRef>` is four bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct ClauseRef(NonZeroU32);

impl ClauseRef {
    pub(crate) fn new(index: usize) -> Self {
        ClauseRef(
            NonZeroU32::new(u32::try_from(index + 1).expect("clause arena overflow"))
                .expect("nonzero by construction"),
        )
    }

    pub(crate) fn index(self) -> usize {
        self.0.get() as usize - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let v = Var(7);
        assert_eq!(v.pos().var(), v);
        assert_eq!(v.neg().var(), v);
        assert!(v.pos().is_positive());
        assert!(!v.neg().is_positive());
        assert_eq!(!v.pos(), v.neg());
        assert_eq!(!!v.pos(), v.pos());
        assert_eq!(v.lit(true), v.pos());
        assert_eq!(v.lit(false), v.neg());
        assert_eq!(v.pos().index(), 14);
        assert_eq!(v.neg().index(), 15);
    }

    #[test]
    fn display_forms() {
        let v = Var(3);
        assert_eq!(v.to_string(), "v3");
        assert_eq!(v.pos().to_string(), "v3");
        assert_eq!(v.neg().to_string(), "!v3");
    }

    #[test]
    fn clause_ref_roundtrip() {
        let c = ClauseRef::new(0);
        assert_eq!(c.index(), 0);
        let c = ClauseRef::new(41);
        assert_eq!(c.index(), 41);
    }
}
