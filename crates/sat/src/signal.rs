//! Wiring OS signals into the [`StopHandle`](crate::StopHandle)
//! cancellation chain.
//!
//! Frontends (the CLI, the `aqed-serve` daemon) want Ctrl-C to drain a
//! run through the normal `Cancelled` taxonomy instead of killing the
//! process mid-solve. The workspace carries no `libc`/`signal-hook`
//! dependency, so this module declares the one C symbol it needs —
//! `signal(2)`, which the Rust standard library already links — and
//! keeps the handler async-signal-safe: it only stores into an atomic
//! that a process-global [`StopHandle`](crate::StopHandle) reads.
//!
//! The handler is one-shot by design: the first SIGINT requests a
//! graceful stop and re-installs the default disposition, so a second
//! Ctrl-C terminates the process the ordinary way if draining hangs.

use crate::budget::StopHandle;
use std::sync::OnceLock;

static SIGINT_STOP: OnceLock<StopHandle> = OnceLock::new();

/// Returns a process-global [`StopHandle`] that trips on the first
/// SIGINT, installing the handler on first call. Subsequent calls
/// return the same handle without touching signal dispositions.
///
/// A second SIGINT falls through to the default disposition
/// (terminate), so an operator is never locked out of killing a hung
/// drain. On non-Unix targets the returned handle simply never trips.
#[must_use]
pub fn stop_on_sigint() -> StopHandle {
    let handle = SIGINT_STOP.get_or_init(StopHandle::new).clone();
    #[cfg(unix)]
    unix::install();
    handle
}

#[cfg(unix)]
mod unix {
    use super::SIGINT_STOP;
    use std::os::raw::c_int;
    use std::sync::Once;

    const SIGINT: c_int = 2;
    const SIG_DFL: usize = 0;

    extern "C" {
        // `signal(2)` from the platform libc, which std already links.
        fn signal(signum: c_int, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_signum: c_int) {
        // Async-signal-safe: a relaxed atomic store (request_stop) and a
        // `signal` call restoring the default disposition. No locks, no
        // allocation.
        unsafe {
            signal(SIGINT, SIG_DFL);
        }
        if let Some(handle) = SIGINT_STOP.get() {
            handle.request_stop();
        }
    }

    pub(super) fn install() {
        static INSTALL: Once = Once::new();
        INSTALL.call_once(|| unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_calls_share_one_handle() {
        let a = stop_on_sigint();
        let b = stop_on_sigint();
        // Tripping one clone is visible through the other: they are the
        // same process-global handle.
        assert!(!b.is_requested());
        a.request_stop();
        assert!(b.is_requested());
    }
}
