//! Arena clause allocator.
//!
//! All non-binary clauses live in one flat `Vec<u32>`; a [`ClauseRef`] is
//! an offset into that arena (stored `+1` so `Option<ClauseRef>` stays
//! four bytes). Clause layout:
//!
//! ```text
//! [ header ] [ activity (learnt only) ] [ lit 0 ] [ lit 1 ] ...
//! ```
//!
//! The header packs the literal count with three flags:
//!
//! * `learnt`  — clause carries an activity word and may be deleted by
//!   database reduction,
//! * `deleted` — clause was freed; its watchers are dropped lazily the
//!   next time propagation or garbage collection walks over them,
//! * `reloc`   — clause was copied to a new arena during garbage
//!   collection; the word after the header holds the forwarding offset.
//!
//! Freeing a clause only sets the `deleted` bit and books the clause's
//! words as wasted. When the wasted fraction crosses
//! [`ClauseAllocator::should_collect`]'s threshold, the solver copies all
//! live clauses into a fresh arena ([`ClauseAllocator::reloc`]) and
//! rewrites every stored reference (watch lists, reasons, clause lists).
//!
//! Binary clauses never enter the arena at all — the solver inlines them
//! into the watch lists (see `Watcher` in `solver.rs`).

use crate::{ClauseRef, Lit};

const LEARNT_BIT: u32 = 1 << 0;
const DELETED_BIT: u32 = 1 << 1;
const RELOC_BIT: u32 = 1 << 2;
const SIZE_SHIFT: u32 = 3;

/// Fraction of wasted words that triggers garbage collection.
const GARBAGE_FRAC: f64 = 0.20;

/// Flat arena holding every clause of three or more literals.
#[derive(Debug, Clone, Default)]
pub(crate) struct ClauseAllocator {
    data: Vec<u32>,
    wasted: usize,
}

impl ClauseAllocator {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn with_capacity(words: usize) -> Self {
        ClauseAllocator {
            data: Vec::with_capacity(words),
            wasted: 0,
        }
    }

    /// Arena size in bytes (live + wasted).
    pub(crate) fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<u32>()
    }

    /// Words currently booked as wasted by freed clauses.
    pub(crate) fn wasted_words(&self) -> usize {
        self.wasted
    }

    /// Total arena length in words (live + wasted).
    pub(crate) fn len_words(&self) -> usize {
        self.data.len()
    }

    /// Whether enough of the arena is dead to be worth compacting.
    pub(crate) fn should_collect(&self) -> bool {
        self.wasted as f64 > self.data.len() as f64 * GARBAGE_FRAC
    }

    /// Allocates a clause and returns its reference. Binary clauses are
    /// watcher-inlined by the solver and must not be allocated here.
    pub(crate) fn alloc(&mut self, lits: &[Lit], learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 3, "binary clauses are watcher-inlined");
        let size = u32::try_from(lits.len()).expect("clause too large");
        debug_assert!(size < (1 << (32 - SIZE_SHIFT)));
        let offset = self.data.len();
        self.data.push(size << SIZE_SHIFT | u32::from(learnt));
        if learnt {
            self.data.push(0f32.to_bits());
        }
        self.data.extend(lits.iter().map(|l| l.0));
        ClauseRef::new(offset)
    }

    /// Marks a clause deleted. Watchers still referencing it are dropped
    /// lazily; the words are reclaimed at the next garbage collection.
    pub(crate) fn free(&mut self, cref: ClauseRef) {
        let idx = cref.index();
        let header = self.data[idx];
        debug_assert_eq!(header & (DELETED_BIT | RELOC_BIT), 0);
        self.data[idx] = header | DELETED_BIT;
        self.wasted += clause_words(header);
    }

    #[inline]
    pub(crate) fn is_deleted(&self, cref: ClauseRef) -> bool {
        self.data[cref.index()] & DELETED_BIT != 0
    }

    #[inline]
    pub(crate) fn is_learnt(&self, cref: ClauseRef) -> bool {
        self.data[cref.index()] & LEARNT_BIT != 0
    }

    #[inline]
    pub(crate) fn size(&self, cref: ClauseRef) -> usize {
        (self.data[cref.index()] >> SIZE_SHIFT) as usize
    }

    /// The `k`-th literal of the clause.
    #[inline]
    pub(crate) fn lit(&self, cref: ClauseRef, k: usize) -> Lit {
        let idx = cref.index();
        let start = idx + 1 + (self.data[idx] & LEARNT_BIT) as usize;
        Lit(self.data[start + k])
    }

    /// The clause's literals as a slice.
    #[inline]
    pub(crate) fn lits(&self, cref: ClauseRef) -> &[Lit] {
        let idx = cref.index();
        let header = self.data[idx];
        let start = idx + 1 + (header & LEARNT_BIT) as usize;
        let words = &self.data[start..start + (header >> SIZE_SHIFT) as usize];
        // SAFETY: `Lit` is `repr(transparent)` over `u32`.
        unsafe { &*(words as *const [u32] as *const [Lit]) }
    }

    /// The clause's literals as a mutable slice (watch-position swaps).
    #[inline]
    pub(crate) fn lits_mut(&mut self, cref: ClauseRef) -> &mut [Lit] {
        let idx = cref.index();
        let header = self.data[idx];
        let start = idx + 1 + (header & LEARNT_BIT) as usize;
        let words = &mut self.data[start..start + (header >> SIZE_SHIFT) as usize];
        // SAFETY: `Lit` is `repr(transparent)` over `u32`.
        unsafe { &mut *(words as *mut [u32] as *mut [Lit]) }
    }

    /// Activity of a learnt clause.
    #[inline]
    pub(crate) fn activity(&self, cref: ClauseRef) -> f32 {
        debug_assert!(self.is_learnt(cref));
        f32::from_bits(self.data[cref.index() + 1])
    }

    #[inline]
    pub(crate) fn set_activity(&mut self, cref: ClauseRef, activity: f32) {
        debug_assert!(self.is_learnt(cref));
        self.data[cref.index() + 1] = activity.to_bits();
    }

    /// Moves the clause into arena `to` (if not already moved) and
    /// returns its new reference. The old slot keeps a forwarding offset
    /// so every alias of the reference relocates consistently.
    pub(crate) fn reloc(&mut self, cref: ClauseRef, to: &mut ClauseAllocator) -> ClauseRef {
        let idx = cref.index();
        let header = self.data[idx];
        if header & RELOC_BIT != 0 {
            return ClauseRef::new(self.data[idx + 1] as usize);
        }
        debug_assert_eq!(header & DELETED_BIT, 0, "deleted clauses are not relocated");
        let words = clause_words(header);
        let offset = to.data.len();
        to.data.extend_from_slice(&self.data[idx..idx + words]);
        self.data[idx] = header | RELOC_BIT;
        self.data[idx + 1] = u32::try_from(offset).expect("clause arena overflow");
        ClauseRef::new(offset)
    }
}

/// Total words occupied by a clause with the given header.
fn clause_words(header: u32) -> usize {
    1 + (header & LEARNT_BIT) as usize + (header >> SIZE_SHIFT) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    fn lits(ls: &[(u32, bool)]) -> Vec<Lit> {
        ls.iter().map(|&(v, pos)| Var(v).lit(pos)).collect()
    }

    #[test]
    fn alloc_and_read_back() {
        let mut ca = ClauseAllocator::new();
        let a = lits(&[(0, true), (1, false), (2, true)]);
        let b = lits(&[(3, true), (4, true), (5, false), (6, true)]);
        let ra = ca.alloc(&a, false);
        let rb = ca.alloc(&b, true);
        assert_eq!(ca.lits(ra), &a[..]);
        assert_eq!(ca.lits(rb), &b[..]);
        assert_eq!(ca.size(ra), 3);
        assert_eq!(ca.size(rb), 4);
        assert!(!ca.is_learnt(ra));
        assert!(ca.is_learnt(rb));
        assert_eq!(ca.activity(rb), 0.0);
        ca.set_activity(rb, 2.5);
        assert_eq!(ca.activity(rb), 2.5);
        assert_eq!(
            ca.lits(rb),
            &b[..],
            "activity write must not clobber literals"
        );
    }

    #[test]
    fn free_books_waste_and_collection_threshold() {
        let mut ca = ClauseAllocator::new();
        let a = ca.alloc(&lits(&[(0, true), (1, true), (2, true)]), false);
        let _b = ca.alloc(&lits(&[(3, true), (4, true), (5, true)]), false);
        assert!(!ca.should_collect());
        ca.free(a);
        assert!(ca.is_deleted(a));
        assert_eq!(ca.wasted_words(), 4);
        assert!(ca.should_collect(), "half the arena is dead");
    }

    #[test]
    fn reloc_forwards_aliases() {
        let mut ca = ClauseAllocator::new();
        let a = lits(&[(0, true), (1, true), (2, false)]);
        let b = lits(&[(3, false), (4, true), (5, true)]);
        let ra = ca.alloc(&a, false);
        let rb = ca.alloc(&b, true);
        ca.free(ra);
        ca.set_activity(rb, 7.0);
        let mut to = ClauseAllocator::with_capacity(8);
        let rb1 = ca.reloc(rb, &mut to);
        let rb2 = ca.reloc(rb, &mut to);
        assert_eq!(rb1, rb2, "second reloc must follow the forwarding offset");
        assert_eq!(to.lits(rb1), &b[..]);
        assert!(to.is_learnt(rb1));
        assert_eq!(to.activity(rb1), 7.0);
        assert_eq!(to.wasted_words(), 0);
        assert!(to.bytes() < ca.bytes());
    }
}
