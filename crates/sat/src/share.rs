//! Lock-light learnt-clause sharing between portfolio workers.
//!
//! Each worker owns one [`ShareRing`]: a fixed-size, single-producer
//! broadcast ring of short learnt clauses. The producer publishes
//! clauses with a per-slot seqlock (stamp odd while writing, even when
//! complete); any number of readers follow with private cursors and
//! re-validate the stamp after copying, so a slot overwritten mid-read
//! is discarded rather than delivered torn. A reader that falls more
//! than one ring behind simply skips ahead — losing shared clauses is
//! always sound, delivering a torn one never is.
//!
//! The protocol is deliberately lossy and wait-free on both sides:
//! exporting is a handful of relaxed atomic stores bracketed by two
//! stamp updates, and importing happens only at the solver's coarse
//! budget tick, so sharing adds zero cost to hot propagation.
//!
//! Literal slots are `AtomicU32` (the transparent representation of
//! [`Lit`]), so even a racy overlap is well-defined at the language
//! level; the stamp re-check provides the logical atomicity.

use crate::Lit;
use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Maximum length of a shared clause. Longer learnts stay private:
/// sharing targets the short, high-quality clauses whose import cost is
/// trivially repaid.
pub const MAX_SHARED_LITS: usize = 8;

/// Maximum glue (literal-block distance) of a shared clause. Glue ≤ 2
/// clauses are the classic "worth telling everyone" tier.
pub const MAX_SHARED_GLUE: u32 = 2;

/// Slots per ring. Power of two; at the import cadence of one drain per
/// budget tick this is deep enough that losses are rare, and losses are
/// harmless anyway.
const RING_SLOTS: u64 = 256;

/// A short clause copied out of a ring.
#[derive(Debug, Clone, Copy)]
pub struct SharedClause {
    lits: [Lit; MAX_SHARED_LITS],
    len: u8,
}

impl SharedClause {
    /// The clause literals.
    #[must_use]
    pub fn lits(&self) -> &[Lit] {
        &self.lits[..self.len as usize]
    }
}

/// One seqlock-protected clause slot.
#[derive(Debug)]
struct Slot {
    /// `2·seq + 1` while publication `seq` is being written into this
    /// slot, `2·seq + 2` once it is complete.
    stamp: AtomicU64,
    len: AtomicU32,
    lits: [AtomicU32; MAX_SHARED_LITS],
}

impl Slot {
    fn new() -> Self {
        Slot {
            stamp: AtomicU64::new(0),
            len: AtomicU32::new(0),
            lits: std::array::from_fn(|_| AtomicU32::new(0)),
        }
    }
}

/// A single-producer, multi-reader, lossy broadcast ring of short
/// clauses.
#[derive(Debug)]
pub struct ShareRing {
    /// Number of clauses ever published (the next publication number).
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl ShareRing {
    fn new() -> Self {
        ShareRing {
            head: AtomicU64::new(0),
            slots: (0..RING_SLOTS).map(|_| Slot::new()).collect(),
        }
    }

    /// Publishes a clause. Must only be called by the ring's owning
    /// worker (single-producer discipline); readers are unaffected by
    /// concurrent pushes beyond losing overwritten entries.
    pub fn push(&self, lits: &[Lit]) {
        debug_assert!(!lits.is_empty() && lits.len() <= MAX_SHARED_LITS);
        let seq = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(seq % RING_SLOTS) as usize];
        // The swap's acquire ordering keeps the data stores below from
        // floating above the "writing" mark (the crossbeam seqlock
        // write-begin recipe).
        slot.stamp.swap(2 * seq + 1, Ordering::Acquire);
        for (cell, &l) in slot.lits.iter().zip(lits) {
            cell.store(l.0, Ordering::Relaxed);
        }
        slot.len.store(lits.len() as u32, Ordering::Relaxed);
        slot.stamp.store(2 * seq + 2, Ordering::Release);
        self.head.store(seq + 1, Ordering::Release);
    }

    /// Number of clauses ever published.
    #[must_use]
    pub fn published(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Copies every clause published since `*cursor` into `sink`,
    /// advancing the cursor. Entries overwritten before or during the
    /// copy are skipped. Returns how many clauses were delivered.
    pub fn drain_from(&self, cursor: &mut u64, mut sink: impl FnMut(SharedClause)) -> u64 {
        let head = self.head.load(Ordering::Acquire);
        // Fell a full ring behind: everything older is gone.
        if head.saturating_sub(*cursor) > RING_SLOTS {
            *cursor = head - RING_SLOTS;
        }
        let mut delivered = 0u64;
        while *cursor < head {
            let seq = *cursor;
            *cursor += 1;
            let slot = &self.slots[(seq % RING_SLOTS) as usize];
            let expect = 2 * seq + 2;
            if slot.stamp.load(Ordering::Acquire) != expect {
                continue; // overwritten (or being overwritten)
            }
            let len = slot.len.load(Ordering::Relaxed).min(MAX_SHARED_LITS as u32);
            let mut out = SharedClause {
                lits: [Lit(0); MAX_SHARED_LITS],
                len: len as u8,
            };
            for (dst, cell) in out.lits.iter_mut().zip(&slot.lits).take(len as usize) {
                *dst = Lit(cell.load(Ordering::Relaxed));
            }
            // Re-validate: if the producer lapped us mid-copy, the stamp
            // moved on and the copy may be torn — drop it.
            fence(Ordering::Acquire);
            if slot.stamp.load(Ordering::Relaxed) == expect && len > 0 {
                sink(out);
                delivered += 1;
            }
        }
        delivered
    }
}

/// The shared clause pool of one portfolio race: one export ring per
/// worker.
#[derive(Debug)]
pub struct ClausePool {
    rings: Vec<ShareRing>,
}

impl ClausePool {
    /// Creates a pool for `workers` participants.
    #[must_use]
    pub fn new(workers: usize) -> Arc<Self> {
        Arc::new(ClausePool {
            rings: (0..workers).map(|_| ShareRing::new()).collect(),
        })
    }

    /// Number of participating workers.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.rings.len()
    }

    /// Worker `i`'s export ring.
    #[must_use]
    pub fn ring(&self, i: usize) -> &ShareRing {
        &self.rings[i]
    }
}

/// A worker's view of the pool: its own ring for exporting plus one
/// read cursor per peer. Held by [`crate::Solver`] when sharing is on.
#[derive(Debug, Clone)]
pub(crate) struct ShareCtx {
    pool: Arc<ClausePool>,
    id: usize,
    cursors: Vec<u64>,
}

impl ShareCtx {
    pub(crate) fn new(pool: Arc<ClausePool>, id: usize) -> Self {
        assert!(id < pool.workers(), "worker id out of range");
        let cursors = pool.rings.iter().map(ShareRing::published).collect();
        ShareCtx { pool, id, cursors }
    }

    /// Exports a clause into this worker's ring.
    pub(crate) fn export(&self, lits: &[Lit]) {
        self.pool.rings[self.id].push(lits);
    }

    /// Drains every peer ring into `sink`; returns the number of
    /// delivered clauses.
    pub(crate) fn drain(&mut self, mut sink: impl FnMut(SharedClause)) -> u64 {
        let mut n = 0;
        for (i, ring) in self.pool.rings.iter().enumerate() {
            if i == self.id {
                continue;
            }
            n += ring.drain_from(&mut self.cursors[i], &mut sink);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    fn lits(ids: &[i32]) -> Vec<Lit> {
        ids.iter()
            .map(|&n| Var(n.unsigned_abs()).lit(n >= 0))
            .collect()
    }

    #[test]
    fn push_and_drain_roundtrip() {
        let pool = ClausePool::new(2);
        pool.ring(0).push(&lits(&[1, -2]));
        pool.ring(0).push(&lits(&[3, 4, -5]));
        let mut ctx1 = ShareCtx::new(pool.clone(), 1);
        // Cursors start at creation time: nothing published after.
        assert_eq!(ctx1.drain(|_| {}), 0);
        pool.ring(0).push(&lits(&[-7]));
        let mut got = Vec::new();
        assert_eq!(ctx1.drain(|c| got.push(c.lits().to_vec())), 1);
        assert_eq!(got, vec![lits(&[-7])]);
        // Own ring is never drained.
        pool.ring(1).push(&lits(&[9]));
        assert_eq!(ctx1.drain(|_| {}), 0);
    }

    #[test]
    fn overwritten_entries_are_skipped_not_torn() {
        let pool = ClausePool::new(2);
        let ring = pool.ring(0);
        let mut cursor = 0u64;
        // Publish more than a full ring; the reader must skip the lost
        // prefix and deliver only intact suffix entries.
        let total = RING_SLOTS + 37;
        for i in 0..total {
            ring.push(&lits(&[i as i32 + 1]));
        }
        let mut got = Vec::new();
        let n = ring.drain_from(&mut cursor, |c| got.push(c.lits().to_vec()));
        assert_eq!(n, RING_SLOTS);
        assert_eq!(cursor, total);
        // Every delivered clause is one that was actually published.
        for (k, c) in got.iter().enumerate() {
            let expect = total - RING_SLOTS + k as u64;
            assert_eq!(c, &lits(&[expect as i32 + 1]));
        }
    }

    #[test]
    fn concurrent_producer_and_reader_never_tear() {
        // Producer publishes clauses whose literals all encode the same
        // sequence number; a torn read would mix two sequences.
        let pool = ClausePool::new(2);
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            let pool2 = pool.clone();
            let stop_ref = &stop;
            s.spawn(move || {
                for i in 0u32..60_000 {
                    let v = (i % 1000) + 1;
                    let c = [Var(v).pos(), Var(v + 1).pos(), Var(v + 2).pos()];
                    pool2.ring(0).push(&c);
                }
                stop_ref.store(true, Ordering::Release);
            });
            let mut cursor = 0u64;
            let mut seen = 0u64;
            while !stop.load(Ordering::Acquire) || cursor < pool.ring(0).published() {
                seen += pool.ring(0).drain_from(&mut cursor, |c| {
                    let ls = c.lits();
                    assert_eq!(ls.len(), 3);
                    let base = ls[0].var().0;
                    assert_eq!(ls[1].var().0, base + 1, "torn clause delivered");
                    assert_eq!(ls[2].var().0, base + 2, "torn clause delivered");
                });
            }
            assert!(seen > 0, "reader observed no clauses at all");
        });
    }
}
