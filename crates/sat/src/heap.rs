//! Indexed binary max-heap ordered by variable activity, used for VSIDS
//! decision selection.
//!
//! The heap stores variable indices and supports `decrease`-free
//! *increase-key* (activity only ever grows between rescales) plus removal
//! of the maximum and arbitrary re-insertion, all `O(log n)`.

/// Max-heap over `usize` keys ordered by an external activity array.
#[derive(Debug, Clone, Default)]
pub(crate) struct ActivityHeap {
    /// Heap array of variable indices.
    heap: Vec<usize>,
    /// Position of each variable in `heap`, or `usize::MAX` if absent.
    pos: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl ActivityHeap {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Grows the position table to cover variable `n - 1`.
    pub(crate) fn grow(&mut self, n: usize) {
        if self.pos.len() < n {
            self.pos.resize(n, ABSENT);
        }
    }

    pub(crate) fn contains(&self, v: usize) -> bool {
        self.pos.get(v).copied().unwrap_or(ABSENT) != ABSENT
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    /// Inserts `v` (no-op if already present).
    pub(crate) fn insert(&mut self, v: usize, activity: &[f64]) {
        self.grow(v + 1);
        if self.contains(v) {
            return;
        }
        self.heap.push(v);
        self.pos[v] = self.heap.len() - 1;
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Removes and returns the variable with maximum activity.
    pub(crate) fn pop_max(&mut self, activity: &[f64]) -> Option<usize> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("nonempty");
        self.pos[top] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Restores heap order around `v` after its activity increased.
    pub(crate) fn update(&mut self, v: usize, activity: &[f64]) {
        if let Some(&p) = self.pos.get(v) {
            if p != ABSENT {
                self.sift_up(p, activity);
            }
        }
    }

    /// Rebuilds the heap after a global activity rescale (order is
    /// preserved by uniform scaling, so this is only needed if relative
    /// order could have changed; kept for robustness).
    pub(crate) fn rebuild(&mut self, activity: &[f64]) {
        for i in (0..self.heap.len() / 2).rev() {
            self.sift_down(i, activity);
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        let v = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 2;
            let pv = self.heap[parent];
            if activity[pv] >= activity[v] {
                break;
            }
            self.heap[i] = pv;
            self.pos[pv] = i;
            i = parent;
        }
        self.heap[i] = v;
        self.pos[v] = i;
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        let v = self.heap[i];
        let n = self.heap.len();
        loop {
            let left = 2 * i + 1;
            if left >= n {
                break;
            }
            let right = left + 1;
            let child = if right < n && activity[self.heap[right]] > activity[self.heap[left]] {
                right
            } else {
                left
            };
            let cv = self.heap[child];
            if activity[v] >= activity[cv] {
                break;
            }
            self.heap[i] = cv;
            self.pos[cv] = i;
            i = child;
        }
        self.heap[i] = v;
        self.pos[v] = i;
    }

    #[cfg(test)]
    fn check_invariants(&self, activity: &[f64]) {
        for i in 1..self.heap.len() {
            let parent = (i - 1) / 2;
            assert!(
                activity[self.heap[parent]] >= activity[self.heap[i]],
                "heap property violated at {i}"
            );
        }
        for (i, &v) in self.heap.iter().enumerate() {
            assert_eq!(self.pos[v], i, "position table out of sync");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![3.0, 1.0, 4.0, 1.5, 9.2, 2.6];
        let mut h = ActivityHeap::new();
        for v in 0..activity.len() {
            h.insert(v, &activity);
            h.check_invariants(&activity);
        }
        assert_eq!(h.len(), 6);
        let mut order = Vec::new();
        while let Some(v) = h.pop_max(&activity) {
            order.push(v);
            h.check_invariants(&activity);
        }
        assert_eq!(order, vec![4, 2, 0, 5, 3, 1]);
        assert!(h.is_empty());
    }

    #[test]
    fn double_insert_is_noop() {
        let activity = vec![1.0, 2.0];
        let mut h = ActivityHeap::new();
        h.insert(0, &activity);
        h.insert(0, &activity);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn update_after_bump() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut h = ActivityHeap::new();
        for v in 0..3 {
            h.insert(v, &activity);
        }
        activity[0] = 10.0;
        h.update(0, &activity);
        h.check_invariants(&activity);
        assert_eq!(h.pop_max(&activity), Some(0));
    }

    #[test]
    fn reinsert_after_pop() {
        let activity = vec![5.0, 1.0];
        let mut h = ActivityHeap::new();
        h.insert(0, &activity);
        h.insert(1, &activity);
        assert_eq!(h.pop_max(&activity), Some(0));
        assert!(!h.contains(0));
        assert!(h.contains(1));
        h.insert(0, &activity);
        assert_eq!(h.pop_max(&activity), Some(0));
        assert_eq!(h.pop_max(&activity), Some(1));
        assert_eq!(h.pop_max(&activity), None);
    }

    #[test]
    fn rebuild_keeps_validity() {
        let mut activity = vec![1.0, 5.0, 3.0, 2.0];
        let mut h = ActivityHeap::new();
        for v in 0..4 {
            h.insert(v, &activity);
        }
        for a in activity.iter_mut() {
            *a *= 1e-100;
        }
        h.rebuild(&activity);
        h.check_invariants(&activity);
        assert_eq!(h.pop_max(&activity), Some(1));
    }
}
