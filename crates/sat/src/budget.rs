//! Resource governance for solve calls: deadlines, effort caps, and
//! cooperative cancellation.
//!
//! A verification service cannot afford a solver that never comes back.
//! This module provides the vocabulary the whole engine stack shares:
//!
//! * [`Budget`] — a plain-data *specification* of limits (wall-clock
//!   timeout, conflict/propagation caps, arena-memory cap). It is `Copy`
//!   and `Eq`, so option structs that embed it stay comparable.
//! * [`ArmedBudget`] — a budget *in flight*: the deadline is resolved to
//!   an absolute instant and a [`StopHandle`] is attached. Armed budgets
//!   are handed to solvers ([`crate::Solver::set_budget`]) and polled at
//!   coarse intervals from the search loop.
//! * [`StopHandle`] — an `Arc<AtomicBool>`-backed cancellation flag.
//!   Handles form a parent chain: a child handle trips when either its
//!   own flag or any ancestor's flag is set, which is how the obligation
//!   scheduler cancels one stuck job (child) or the whole run (root)
//!   without the solver knowing the difference.
//! * [`StopReason`] — why a solve stopped early; surfaces all the way up
//!   to verification reports and the CLI.
//!
//! The solver checks the armed budget only every few dozen search steps
//! (a coarse tick counter), so `Instant::now()` never lands on the hot
//! propagation path.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a solve call gave up before reaching a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The conflict cap was exhausted.
    Conflicts,
    /// The propagation cap was exhausted.
    Propagations,
    /// The clause-arena memory cap was exceeded.
    Memory,
    /// A [`StopHandle`] requested cancellation.
    Cancelled,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StopReason::Deadline => "deadline",
            StopReason::Conflicts => "conflict budget",
            StopReason::Propagations => "propagation budget",
            StopReason::Memory => "memory cap",
            StopReason::Cancelled => "cancelled",
        };
        f.write_str(s)
    }
}

/// A resource-limit specification. All limits default to unlimited.
///
/// `Budget` is inert data — arm it with [`ArmedBudget::arm`] to start
/// the clock. Effort caps (conflicts, propagations) are measured *per
/// solve call*, not cumulatively, so an incremental session does not
/// starve later frames because earlier ones worked hard.
///
/// # Examples
///
/// ```
/// use aqed_sat::Budget;
/// use std::time::Duration;
///
/// let b = Budget::default()
///     .with_timeout(Duration::from_secs(30))
///     .with_max_conflicts(1_000_000);
/// assert_eq!(b.timeout, Some(Duration::from_secs(30)));
/// assert_eq!(b.max_propagations, None);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Budget {
    /// Wall-clock limit for the whole governed region.
    pub timeout: Option<Duration>,
    /// Maximum conflicts per solve call.
    pub max_conflicts: Option<u64>,
    /// Maximum propagations per solve call.
    pub max_propagations: Option<u64>,
    /// Maximum clause-arena size in bytes.
    pub max_arena_bytes: Option<u64>,
}

impl Budget {
    /// A budget with no limits (every field `None`).
    #[must_use]
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Sets the wall-clock limit.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Sets the per-solve conflict cap.
    #[must_use]
    pub fn with_max_conflicts(mut self, max: u64) -> Self {
        self.max_conflicts = Some(max);
        self
    }

    /// Sets the per-solve propagation cap.
    #[must_use]
    pub fn with_max_propagations(mut self, max: u64) -> Self {
        self.max_propagations = Some(max);
        self
    }

    /// Sets the clause-arena memory cap in bytes.
    #[must_use]
    pub fn with_max_arena_bytes(mut self, max: u64) -> Self {
        self.max_arena_bytes = Some(max);
        self
    }

    /// Whether every limit is `None`.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        *self == Self::default()
    }
}

/// A cooperative cancellation flag, cheaply cloneable and shareable
/// across threads.
///
/// Handles chain: [`StopHandle::child`] creates a handle that reports
/// [`StopHandle::is_requested`] when either its own flag or any
/// ancestor's flag is set, while [`StopHandle::request_stop`] only sets
/// the handle's own flag. The obligation scheduler uses this to cancel
/// a single stuck job without touching its siblings, and the whole run
/// by tripping the root.
#[derive(Debug, Clone, Default)]
pub struct StopHandle {
    flag: Arc<AtomicBool>,
    parent: Option<Arc<StopHandle>>,
}

impl StopHandle {
    /// Creates a fresh, untripped handle with no parent.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a handle that also trips when `self` (or any of its
    /// ancestors) trips.
    #[must_use]
    pub fn child(&self) -> Self {
        StopHandle {
            flag: Arc::new(AtomicBool::new(false)),
            parent: Some(Arc::new(self.clone())),
        }
    }

    /// Requests cancellation of this handle (and, through the parent
    /// chain, everything derived from it via [`StopHandle::child`]).
    pub fn request_stop(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether this handle or any ancestor has been asked to stop.
    #[must_use]
    pub fn is_requested(&self) -> bool {
        if self.flag.load(Ordering::Acquire) {
            return true;
        }
        match &self.parent {
            Some(p) => p.is_requested(),
            None => false,
        }
    }
}

/// A [`Budget`] in flight: deadline resolved to an absolute instant,
/// cancellation handle attached.
///
/// Cloning an `ArmedBudget` shares the stop handle (clones observe each
/// other's cancellation) but copies the deadline and caps.
#[derive(Debug, Clone)]
pub struct ArmedBudget {
    deadline: Option<Instant>,
    max_conflicts: Option<u64>,
    max_propagations: Option<u64>,
    max_arena_bytes: Option<u64>,
    stop: StopHandle,
}

impl Default for ArmedBudget {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl ArmedBudget {
    /// Arms `spec` now: the deadline (if any) starts counting from this
    /// call. A fresh stop handle is attached.
    #[must_use]
    pub fn arm(spec: &Budget) -> Self {
        Self::arm_with(spec, StopHandle::new())
    }

    /// Arms `spec` with an externally owned stop handle (so a caller can
    /// cancel the region it governs).
    #[must_use]
    pub fn arm_with(spec: &Budget, stop: StopHandle) -> Self {
        ArmedBudget {
            deadline: spec.timeout.map(|t| Instant::now() + t),
            max_conflicts: spec.max_conflicts,
            max_propagations: spec.max_propagations,
            max_arena_bytes: spec.max_arena_bytes,
            stop,
        }
    }

    /// An armed budget with no limits and a fresh stop handle — governs
    /// nothing but can still be cancelled.
    #[must_use]
    pub fn unlimited() -> Self {
        Self::arm(&Budget::unlimited())
    }

    /// Derives a child budget: same deadline and caps, but a child stop
    /// handle. Cancelling the child does not affect the parent;
    /// cancelling the parent is seen by the child.
    #[must_use]
    pub fn child(&self) -> Self {
        ArmedBudget {
            deadline: self.deadline,
            max_conflicts: self.max_conflicts,
            max_propagations: self.max_propagations,
            max_arena_bytes: self.max_arena_bytes,
            stop: self.stop.child(),
        }
    }

    /// The attached stop handle.
    #[must_use]
    pub fn stop_handle(&self) -> &StopHandle {
        &self.stop
    }

    /// Requests cancellation of everything governed by this budget (and
    /// its children).
    pub fn cancel(&self) {
        self.stop.request_stop();
    }

    /// The absolute deadline, if a timeout was set.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Time remaining until the deadline (`None` when no timeout is
    /// set; zero once the deadline has passed).
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Checks the deadline and the stop handle (but not effort caps).
    ///
    /// The deadline is inspected *before* the cancellation flag so that
    /// a watchdog tripping the stop signal at the global deadline still
    /// reports [`StopReason::Deadline`] rather than `Cancelled`.
    #[must_use]
    pub fn poll(&self) -> Option<StopReason> {
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Some(StopReason::Deadline);
            }
        }
        if self.stop.is_requested() {
            return Some(StopReason::Cancelled);
        }
        None
    }

    /// Full check: deadline, then effort caps against the supplied
    /// per-call counters, then the stop handle.
    #[must_use]
    pub fn check(&self, conflicts: u64, propagations: u64, arena_bytes: u64) -> Option<StopReason> {
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Some(StopReason::Deadline);
            }
        }
        if let Some(cap) = self.max_conflicts {
            if conflicts >= cap {
                return Some(StopReason::Conflicts);
            }
        }
        if let Some(cap) = self.max_propagations {
            if propagations >= cap {
                return Some(StopReason::Propagations);
            }
        }
        if let Some(cap) = self.max_arena_bytes {
            if arena_bytes >= cap {
                return Some(StopReason::Memory);
            }
        }
        if self.stop.is_requested() {
            return Some(StopReason::Cancelled);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let armed = ArmedBudget::unlimited();
        assert_eq!(armed.poll(), None);
        assert_eq!(armed.check(u64::MAX, u64::MAX, u64::MAX), None);
        assert_eq!(armed.remaining(), None);
    }

    #[test]
    fn builder_sets_fields() {
        let b = Budget::unlimited()
            .with_timeout(Duration::from_millis(5))
            .with_max_conflicts(10)
            .with_max_propagations(20)
            .with_max_arena_bytes(30);
        assert!(!b.is_unlimited());
        assert_eq!(b.max_conflicts, Some(10));
        assert_eq!(b.max_propagations, Some(20));
        assert_eq!(b.max_arena_bytes, Some(30));
    }

    #[test]
    fn elapsed_deadline_reports_deadline() {
        let armed = ArmedBudget::arm(&Budget::unlimited().with_timeout(Duration::ZERO));
        assert_eq!(armed.poll(), Some(StopReason::Deadline));
        // Deadline wins over a simultaneous cancellation.
        armed.cancel();
        assert_eq!(armed.poll(), Some(StopReason::Deadline));
        assert_eq!(armed.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn caps_trip_in_order() {
        let spec = Budget::unlimited()
            .with_max_conflicts(10)
            .with_max_propagations(100)
            .with_max_arena_bytes(1000);
        let armed = ArmedBudget::arm(&spec);
        assert_eq!(armed.check(0, 0, 0), None);
        assert_eq!(armed.check(10, 0, 0), Some(StopReason::Conflicts));
        assert_eq!(armed.check(0, 100, 0), Some(StopReason::Propagations));
        assert_eq!(armed.check(0, 0, 1000), Some(StopReason::Memory));
    }

    #[test]
    fn cancellation_is_seen_by_clones_and_children() {
        let root = ArmedBudget::unlimited();
        let clone = root.clone();
        let child = root.child();
        assert_eq!(child.poll(), None);
        root.cancel();
        assert_eq!(clone.poll(), Some(StopReason::Cancelled));
        assert_eq!(child.poll(), Some(StopReason::Cancelled));
    }

    #[test]
    fn child_cancellation_does_not_propagate_up() {
        let root = ArmedBudget::unlimited();
        let child = root.child();
        let sibling = root.child();
        child.cancel();
        assert_eq!(child.poll(), Some(StopReason::Cancelled));
        assert_eq!(root.poll(), None);
        assert_eq!(sibling.poll(), None);
    }

    #[test]
    fn stop_reason_display() {
        assert_eq!(StopReason::Deadline.to_string(), "deadline");
        assert_eq!(StopReason::Conflicts.to_string(), "conflict budget");
        assert_eq!(StopReason::Cancelled.to_string(), "cancelled");
    }
}
