//! Portfolio SAT solving: race diversified CDCL workers on one formula.
//!
//! [`PortfolioBackend`] is a [`SatBackend`] that keeps N copies of the
//! incremental instance, each configured from the deterministic
//! diversification palette [`SolverConfig::diversified`]. A solve call
//! races the workers on OS threads under child [`ArmedBudget`]s derived
//! from the backend's own budget: the first worker to reach a definitive
//! verdict wins and cancels its peers through their child stop handles,
//! which the losers observe at the next coarse budget tick. Optionally
//! the workers exchange short, low-glue learnt clauses through the
//! lossy broadcast rings of [`crate::share`].
//!
//! # Incrementality
//!
//! Between solve calls the backend records every operation (variables,
//! clauses, frozen variables) in a flat op log, mirroring the iCNF
//! discipline of [`crate::DimacsBackend`]. Worker 0 is kept in sync
//! eagerly and answers all read-side queries; the remaining workers are
//! materialized lazily — on the first race — by replaying the log, and
//! each keeps a cursor so later syncs only apply the delta. Workers
//! persist across calls, so every member of the portfolio solves
//! incrementally with its own learnt-clause database.
//!
//! # Escalation
//!
//! [`SatBackend::set_escalation_level`] selects the race width: level 0
//! runs worker 0 inline (no threads, no sharing — search-identical to
//! the plain CDCL backend), any higher level races the full configured
//! width. The obligation scheduler uses this so easy obligations never
//! pay portfolio overhead, and only budget-burning retries graduate to
//! the full race. Without a hint (plain CLI use) every solve races.

use crate::budget::{ArmedBudget, StopReason};
use crate::share::ClausePool;
use crate::solver::{SolveResult, Solver, SolverConfig, SolverStats};
use crate::{Lit, SatBackend, Var};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Hard cap on the race width; beyond this thread overhead dwarfs any
/// diversification gain on the obligation sizes A-QED produces.
pub const MAX_WORKERS: usize = 64;

/// Default race width used by [`PortfolioBackend::default`], settable
/// process-wide (the CLI's `--portfolio-workers`). The default
/// constructor must stay parameterless because the BMC session template
/// instantiates backends through `B::default()`.
static DEFAULT_WORKERS: AtomicUsize = AtomicUsize::new(4);
/// Whether [`PortfolioBackend::default`] enables clause sharing.
static DEFAULT_SHARING: AtomicBool = AtomicBool::new(true);

/// Sets the race width used by [`PortfolioBackend::default`] (clamped
/// to `1..=`[`MAX_WORKERS`]).
pub fn set_default_workers(n: usize) {
    DEFAULT_WORKERS.store(n.clamp(1, MAX_WORKERS), Ordering::Relaxed);
}

/// The race width [`PortfolioBackend::default`] will use.
#[must_use]
pub fn default_workers() -> usize {
    DEFAULT_WORKERS
        .load(Ordering::Relaxed)
        .clamp(1, MAX_WORKERS)
}

/// Sets whether [`PortfolioBackend::default`] enables clause sharing.
pub fn set_default_sharing(on: bool) {
    DEFAULT_SHARING.store(on, Ordering::Relaxed);
}

/// Whether [`PortfolioBackend::default`] enables clause sharing.
#[must_use]
pub fn default_sharing() -> bool {
    DEFAULT_SHARING.load(Ordering::Relaxed)
}

/// Flat record of every instance-building operation, replayed into
/// lazily materialized workers (same idea as the iCNF log of
/// [`crate::DimacsBackend`], but kept structural to skip text parsing).
#[derive(Debug, Default, Clone)]
struct OpLog {
    num_vars: usize,
    /// Literal pool; clauses are `(start, end)` ranges into it.
    lits: Vec<Lit>,
    clauses: Vec<(u32, u32)>,
    frozen: Vec<Var>,
}

/// One portfolio member plus its replay cursors into the op log.
#[derive(Debug, Clone)]
struct WorkerSlot {
    solver: Solver,
    synced_clauses: usize,
    synced_frozen: usize,
}

/// A [`SatBackend`] racing N diversified CDCL workers per solve call.
/// See the [module documentation](self) for the full protocol.
#[derive(Debug)]
pub struct PortfolioBackend {
    /// `workers[0]` always exists and is eagerly synced (it answers all
    /// read-side queries); the rest materialize on the first race.
    workers: Vec<WorkerSlot>,
    log: OpLog,
    target_workers: usize,
    sharing: bool,
    conflict_budget: Option<u64>,
    armed: ArmedBudget,
    preprocess: bool,
    stop_reason: Option<StopReason>,
    /// Scheduler hint: `Some(0)` = single-solver mode, `Some(1..)` =
    /// full race, `None` (no scheduler) = always race.
    escalation: Option<u32>,
    metrics_scope: Option<String>,
    /// Which worker's model answers [`SatBackend::value`] queries.
    model_from: Option<usize>,
    /// Portfolio-level statistics (wasted work, winner id) that no
    /// single worker owns.
    extra: SolverStats,
}

impl Default for PortfolioBackend {
    fn default() -> Self {
        let mut p = Self::new(default_workers());
        p.sharing = default_sharing();
        p
    }
}

impl PortfolioBackend {
    /// Creates a portfolio of `workers` diversified members (clamped to
    /// `1..=`[`MAX_WORKERS`]), clause sharing enabled.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let target = workers.clamp(1, MAX_WORKERS);
        PortfolioBackend {
            workers: vec![WorkerSlot {
                solver: Solver::with_config(SolverConfig::diversified(0)),
                synced_clauses: 0,
                synced_frozen: 0,
            }],
            log: OpLog::default(),
            target_workers: target,
            sharing: true,
            conflict_budget: None,
            armed: ArmedBudget::unlimited(),
            preprocess: false,
            stop_reason: None,
            escalation: None,
            metrics_scope: None,
            model_from: None,
            extra: SolverStats::default(),
        }
    }

    /// The configured race width.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.target_workers
    }

    /// Enables or disables clause sharing for subsequent races.
    pub fn set_sharing_enabled(&mut self, on: bool) {
        self.sharing = on;
    }

    /// Whether clause sharing is enabled.
    #[must_use]
    pub fn sharing_enabled(&self) -> bool {
        self.sharing
    }

    /// Applies the log suffix this slot has not seen yet. Returns
    /// `false` if the instance is known unsatisfiable at the top level.
    fn sync_slot(log: &OpLog, slot: &mut WorkerSlot) -> bool {
        while slot.solver.num_vars() < log.num_vars {
            slot.solver.new_var();
        }
        let mut ok = true;
        for &(s, e) in &log.clauses[slot.synced_clauses..] {
            ok = slot
                .solver
                .add_clause(log.lits[s as usize..e as usize].iter().copied());
        }
        slot.synced_clauses = log.clauses.len();
        for &v in &log.frozen[slot.synced_frozen..] {
            slot.solver.freeze_var(v);
        }
        slot.synced_frozen = log.frozen.len();
        ok
    }

    /// Ensures workers `0..width` exist and are synced with the log.
    fn materialize(&mut self, width: usize) {
        while self.workers.len() < width {
            let i = self.workers.len();
            let mut solver = Solver::with_config(SolverConfig::diversified(i));
            solver.set_conflict_budget(self.conflict_budget);
            solver.set_preprocessing(self.preprocess);
            self.workers.push(WorkerSlot {
                solver,
                synced_clauses: 0,
                synced_frozen: 0,
            });
        }
        let log = &self.log;
        for slot in &mut self.workers[..width] {
            Self::sync_slot(log, slot);
        }
    }

    /// The race width the next solve will use.
    fn race_width(&self) -> usize {
        match self.escalation {
            Some(0) => 1,
            _ => self.target_workers,
        }
    }

    /// Runs worker 0 inline — no threads, no sharing. Search-identical
    /// to the plain CDCL backend (worker 0 runs the default config).
    fn solve_single(&mut self, assumptions: &[Lit]) -> SolveResult {
        let slot = &mut self.workers[0];
        slot.solver.clear_sharing();
        slot.solver.set_budget(self.armed.clone());
        slot.solver.set_metrics_scope(self.metrics_scope.clone());
        let result = slot.solver.solve_with(assumptions);
        if result == SolveResult::Sat {
            self.model_from = Some(0);
        }
        self.stop_reason = slot.solver.stop_reason();
        result
    }

    /// Races workers `0..width`; first definitive verdict wins and
    /// cancels the rest through their child budgets.
    fn solve_race(&mut self, width: usize, assumptions: &[Lit]) -> SolveResult {
        self.materialize(width);
        let pool = if self.sharing {
            Some(ClausePool::new(width))
        } else {
            None
        };
        let children: Vec<ArmedBudget> = (0..width).map(|_| self.armed.child()).collect();
        let conflicts_before: Vec<u64> = self.workers[..width]
            .iter()
            .map(|s| s.solver.stats().conflicts)
            .collect();
        for (i, slot) in self.workers[..width].iter_mut().enumerate() {
            slot.solver.set_budget(children[i].clone());
            match &pool {
                Some(p) => slot.solver.set_sharing(p.clone(), i),
                None => slot.solver.clear_sharing(),
            }
            let scope = match &self.metrics_scope {
                Some(base) => format!("{base},worker={i}"),
                None => format!("worker={i}"),
            };
            slot.solver.set_metrics_scope(Some(scope));
        }

        let winner = AtomicUsize::new(usize::MAX);
        let parent_span = aqed_obs::current_span_id();
        let children_ref = &children;
        let winner_ref = &winner;
        let mut results: Vec<SolveResult> = Vec::with_capacity(width);
        let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(width);
            for (i, slot) in self.workers[..width].iter_mut().enumerate() {
                handles.push(scope.spawn(move || {
                    aqed_obs::set_current_span_id(parent_span);
                    let mut span = aqed_obs::async_span(
                        "portfolio.worker",
                        aqed_obs::next_span_id(),
                        aqed_obs::obs_fields!(worker = i, parent = parent_span.unwrap_or(0),),
                    );
                    let result = slot.solver.solve_with(assumptions);
                    let definitive = matches!(result, SolveResult::Sat | SolveResult::Unsat);
                    if definitive
                        && winner_ref
                            .compare_exchange(usize::MAX, i, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok()
                    {
                        for (j, c) in children_ref.iter().enumerate() {
                            if j != i {
                                c.cancel();
                            }
                        }
                    }
                    span.record(
                        "result",
                        match result {
                            SolveResult::Sat => "sat",
                            SolveResult::Unsat => "unsat",
                            SolveResult::Unknown => "unknown",
                        },
                    );
                    drop(span);
                    aqed_obs::flush_local();
                    result
                }));
            }
            for h in handles {
                match h.join() {
                    Ok(r) => results.push(r),
                    Err(p) => {
                        results.push(SolveResult::Unknown);
                        panic_payload.get_or_insert(p);
                    }
                }
            }
        });
        if let Some(p) = panic_payload {
            std::panic::resume_unwind(p);
        }

        let won = winner.load(Ordering::Acquire);
        if won == usize::MAX {
            // Every worker came back without a verdict. Prefer the
            // parent-level reason (deadline / external cancellation) so
            // the caller's retry logic sees the real cause, not the
            // child-handle echo of it.
            self.stop_reason = self.armed.poll().or_else(|| {
                self.workers[..width]
                    .iter()
                    .find_map(|s| s.solver.stop_reason())
            });
            return SolveResult::Unknown;
        }
        let result = results[won];
        if result == SolveResult::Sat {
            self.model_from = Some(won);
        }
        let mut wasted = 0u64;
        for (i, slot) in self.workers[..width].iter().enumerate() {
            if i != won {
                wasted += slot
                    .solver
                    .stats()
                    .conflicts
                    .saturating_sub(conflicts_before[i]);
            }
        }
        self.extra.wasted_conflicts += wasted;
        self.extra.portfolio_winner = Some(won as u32);
        aqed_obs::obs_event!(
            "portfolio.winner",
            worker = won,
            wasted_conflicts = wasted,
            result = match result {
                SolveResult::Sat => "sat",
                SolveResult::Unsat => "unsat",
                SolveResult::Unknown => "unknown",
            },
        );
        result
    }
}

impl SatBackend for PortfolioBackend {
    fn name(&self) -> &'static str {
        "portfolio"
    }

    fn new_var(&mut self) -> Var {
        self.log.num_vars += 1;
        self.workers[0].solver.new_var()
    }

    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        let start = u32::try_from(self.log.lits.len()).expect("portfolio literal pool overflow");
        self.log.lits.extend_from_slice(lits);
        let end = u32::try_from(self.log.lits.len()).expect("portfolio literal pool overflow");
        self.log.clauses.push((start, end));
        Self::sync_slot(&self.log, &mut self.workers[0])
    }

    fn solve_under(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.model_from = None;
        self.stop_reason = None;
        let width = self.race_width();
        if width <= 1 {
            self.solve_single(assumptions)
        } else {
            aqed_obs::obs_event!(
                "portfolio.race",
                workers = width,
                sharing = self.sharing,
                escalation = i64::from(
                    self.escalation
                        .map_or(-1i32, |e| { i32::try_from(e).unwrap_or(i32::MAX) })
                ),
            );
            self.solve_race(width, assumptions)
        }
    }

    fn value(&self, l: Lit) -> Option<bool> {
        self.model_from
            .and_then(|i| self.workers[i].solver.model_lit(l))
    }

    fn stats(&self) -> SolverStats {
        let mut s = self.extra;
        for slot in &self.workers {
            s.absorb(&slot.solver.stats());
        }
        s
    }

    fn num_vars(&self) -> usize {
        self.log.num_vars
    }

    fn num_clauses(&self) -> usize {
        self.workers[0].solver.num_clauses()
    }

    fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
        for slot in &mut self.workers {
            slot.solver.set_conflict_budget(budget);
        }
    }

    fn set_budget(&mut self, budget: ArmedBudget) {
        self.armed = budget;
    }

    fn stop_reason(&self) -> Option<StopReason> {
        self.stop_reason
    }

    fn set_preprocessing(&mut self, enabled: bool) {
        self.preprocess = enabled;
        for slot in &mut self.workers {
            slot.solver.set_preprocessing(enabled);
        }
    }

    fn freeze_var(&mut self, v: Var) {
        self.log.frozen.push(v);
        Self::sync_slot(&self.log, &mut self.workers[0]);
    }

    fn set_escalation_level(&mut self, level: u32) {
        self.escalation = Some(level);
    }

    fn set_metrics_scope(&mut self, scope: &str) {
        self.metrics_scope = Some(scope.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use std::time::Duration;

    /// Pigeonhole PHP(n+1, n): unsatisfiable, needs real search.
    #[allow(clippy::needless_range_loop)]
    fn php<B: SatBackend>(b: &mut B, holes: usize) {
        let pigeons = holes + 1;
        let p: Vec<Vec<Var>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| b.new_var()).collect())
            .collect();
        for row in &p {
            let lits: Vec<Lit> = row.iter().map(|v| v.pos()).collect();
            b.add_clause(&lits);
        }
        for h in 0..holes {
            for i in 0..pigeons {
                for j in i + 1..pigeons {
                    let (pi, pj) = (p[i][h], p[j][h]);
                    b.add_clause(&[pi.neg(), pj.neg()]);
                }
            }
        }
    }

    /// Drives a backend through a small incremental session (same shape
    /// as the backend.rs differential test).
    fn session<B: SatBackend>(b: &mut B) -> Vec<SolveResult> {
        let v: Vec<Var> = (0..4).map(|_| b.new_var()).collect();
        b.add_clause(&[v[0].pos(), v[1].pos()]);
        b.add_clause(&[v[0].neg(), v[2].pos()]);
        let r1 = b.solve_under(&[]);
        let r2 = b.solve_under(&[v[0].pos(), v[2].neg()]);
        b.add_clause(&[v[1].neg()]);
        let r3 = b.solve_under(&[]);
        b.add_clause(&[v[0].neg()]);
        let r4 = b.solve_under(&[]);
        vec![r1, r2, r3, r4]
    }

    #[test]
    fn portfolio_matches_cdcl_on_incremental_session() {
        for workers in [1, 2, 4] {
            let mut s = Solver::new();
            let mut p = PortfolioBackend::new(workers);
            assert_eq!(session(&mut s), session(&mut p), "workers={workers}");
            assert_eq!(p.name(), "portfolio");
        }
    }

    #[test]
    fn portfolio_refutes_pigeonhole_with_and_without_sharing() {
        for sharing in [true, false] {
            let mut p = PortfolioBackend::new(4);
            p.set_sharing_enabled(sharing);
            php(&mut p, 5);
            assert_eq!(p.solve_under(&[]), SolveResult::Unsat, "sharing={sharing}");
            let st = p.stats();
            assert!(st.portfolio_winner.is_some());
            if sharing {
                assert!(
                    st.shared_exported > 0,
                    "a 4-way race on PHP must export short learnts"
                );
            } else {
                assert_eq!(st.shared_exported, 0);
                assert_eq!(st.shared_imported, 0);
            }
        }
    }

    #[test]
    fn sat_model_comes_from_the_winning_worker() {
        let mut p = PortfolioBackend::new(3);
        let v: Vec<Var> = (0..8).map(|_| p.new_var()).collect();
        for w in v.windows(2) {
            p.add_clause(&[w[0].neg(), w[1].pos()]); // chain v0 → … → v7
        }
        p.add_clause(&[v[0].pos()]);
        assert_eq!(p.solve_under(&[]), SolveResult::Sat);
        for &x in &v {
            assert_eq!(p.value(x.pos()), Some(true));
        }
    }

    #[test]
    fn escalation_level_zero_runs_single_solver() {
        let mut p = PortfolioBackend::new(4);
        php(&mut p, 4);
        p.set_escalation_level(0);
        assert_eq!(p.solve_under(&[]), SolveResult::Unsat);
        let st = p.stats();
        assert_eq!(st.portfolio_winner, None, "no race happened");
        assert_eq!(st.wasted_conflicts, 0);
        assert_eq!(p.workers.len(), 1, "no extra workers materialized");
    }

    #[test]
    fn escalation_graduates_to_full_race() {
        let mut p = PortfolioBackend::new(2);
        php(&mut p, 4);
        p.set_escalation_level(0);
        assert_eq!(p.solve_under(&[]), SolveResult::Unsat);
        p.set_escalation_level(1);
        assert_eq!(p.solve_under(&[]), SolveResult::Unsat);
        assert_eq!(p.workers.len(), 2);
        assert!(p.stats().portfolio_winner.is_some());
    }

    #[test]
    fn parent_cancellation_stops_the_whole_race() {
        let mut p = PortfolioBackend::new(3);
        php(&mut p, 9); // far too hard to finish while cancelled
        let armed = ArmedBudget::unlimited();
        let stop = armed.stop_handle().clone();
        p.set_budget(armed);
        let waiter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            stop.request_stop();
        });
        let r = p.solve_under(&[]);
        waiter.join().expect("canceller");
        assert_eq!(r, SolveResult::Unknown);
        assert_eq!(p.stop_reason(), Some(StopReason::Cancelled));
    }

    #[test]
    fn spent_deadline_reports_deadline_not_cancelled() {
        let mut p = PortfolioBackend::new(2);
        php(&mut p, 6);
        p.set_budget(ArmedBudget::arm(
            &Budget::unlimited().with_timeout(Duration::ZERO),
        ));
        assert_eq!(p.solve_under(&[]), SolveResult::Unknown);
        assert_eq!(p.stop_reason(), Some(StopReason::Deadline));
    }

    #[test]
    fn losers_are_cancelled_or_finished_and_wasted_work_is_counted() {
        let mut p = PortfolioBackend::new(4);
        php(&mut p, 6);
        assert_eq!(p.solve_under(&[]), SolveResult::Unsat);
        let won = p.stats().portfolio_winner.expect("a winner") as usize;
        for (i, slot) in p.workers.iter().enumerate() {
            if i == won {
                assert_eq!(slot.solver.stop_reason(), None);
            } else {
                // A loser either got its own verdict just before the
                // cancellation landed, or observed the stop at a tick.
                assert!(matches!(
                    slot.solver.stop_reason(),
                    None | Some(StopReason::Cancelled)
                ));
            }
        }
    }

    #[test]
    fn preprocessing_composes_with_racing() {
        let mut p = PortfolioBackend::new(2);
        p.set_preprocessing(true);
        let v: Vec<Var> = (0..6).map(|_| p.new_var()).collect();
        p.freeze_var(v[0]);
        for w in v.windows(2) {
            p.add_clause(&[w[0].neg(), w[1].pos()]);
        }
        p.add_clause(&[v[5].neg()]);
        assert_eq!(p.solve_under(&[v[0].pos()]), SolveResult::Unsat);
        assert_eq!(p.solve_under(&[v[0].neg()]), SolveResult::Sat);
        assert_eq!(p.value(v[5].pos()), Some(false));
    }

    #[test]
    fn default_reads_process_globals() {
        set_default_workers(3);
        set_default_sharing(false);
        let p = PortfolioBackend::default();
        assert_eq!(p.workers(), 3);
        assert!(!p.sharing_enabled());
        set_default_workers(4);
        set_default_sharing(true);
    }
}
