//! The incremental solver-backend abstraction.
//!
//! Every consumer of SAT solving in the workspace — the bit-blaster, the
//! BMC engine, k-induction, and the A-QED obligation scheduler — talks to
//! a [`SatBackend`] instead of a concrete solver type. The trait captures
//! the minimal incremental interface the stack needs: variable creation,
//! clause addition at decision level 0, solving under assumptions, model
//! extraction, and statistics.
//!
//! Two implementations ship in-tree:
//!
//! * [`Solver`] — the CDCL engine, the default backend everywhere.
//! * [`DimacsBackend`] — a logging wrapper that records every clause and
//!   every query in incremental-DIMACS (iCNF) text while delegating the
//!   actual solving to an inner CDCL solver. Its log can be fed to
//!   *any other* backend with [`DimacsBackend::replay`], which is both a
//!   differential-testing harness and an export path to external solvers
//!   (the `batsat`/MiniSat family exposes the same interface shape).
//!
//! # Examples
//!
//! Generic code works with any backend:
//!
//! ```
//! use aqed_sat::{DimacsBackend, SatBackend, SolveResult, Solver};
//!
//! fn tiny<B: SatBackend>(b: &mut B) -> SolveResult {
//!     let x = b.new_var();
//!     let y = b.new_var();
//!     b.add_clause(&[x.pos(), y.pos()]);
//!     b.add_clause(&[x.neg()]);
//!     b.solve_under(&[])
//! }
//!
//! assert_eq!(tiny(&mut Solver::new()), SolveResult::Sat);
//! let mut logging = DimacsBackend::new();
//! assert_eq!(tiny(&mut logging), SolveResult::Sat);
//! assert!(logging.log().contains("1 2 0"));
//! ```

use crate::budget::{ArmedBudget, StopReason};
use crate::{Lit, SolveResult, Solver, SolverStats, Var};
use std::fmt::Write as _;

/// An incremental SAT solver usable by the bit-blaster and the model
/// checkers.
///
/// Implementations must behave like a level-0 incremental solver:
/// clauses may be added between [`SatBackend::solve_under`] calls, solved
/// state (learned clauses, activities) may persist across calls, and an
/// `Unsat` answer under assumptions does not poison the instance.
pub trait SatBackend {
    /// Short identifier used in reports (e.g. `"cdcl"`).
    fn name(&self) -> &'static str;

    /// Creates a fresh variable.
    fn new_var(&mut self) -> Var;

    /// Adds a clause; returns `false` if the instance is now known
    /// unsatisfiable at the top level.
    fn add_clause(&mut self, lits: &[Lit]) -> bool;

    /// Adds a two-literal clause. Backends with a dedicated binary-clause
    /// representation (the CDCL solver inlines them into watch lists)
    /// override this to skip the slice round-trip.
    fn add_binary(&mut self, a: Lit, b: Lit) -> bool {
        self.add_clause(&[a, b])
    }

    /// Adds a three-literal clause (the other Tseitin fast path).
    fn add_ternary(&mut self, a: Lit, b: Lit, c: Lit) -> bool {
        self.add_clause(&[a, b, c])
    }

    /// Solves the current formula under the given assumption literals.
    fn solve_under(&mut self, assumptions: &[Lit]) -> SolveResult;

    /// The value of `l` in the most recent satisfying assignment, or
    /// `None` if the last solve did not produce a model.
    fn value(&self, l: Lit) -> Option<bool>;

    /// Cumulative search statistics.
    fn stats(&self) -> SolverStats;

    /// Number of variables created so far.
    fn num_vars(&self) -> usize;

    /// Number of clauses currently held.
    fn num_clauses(&self) -> usize;

    /// Limits each following solve call to at most `budget` conflicts
    /// (`None` removes the limit); exhausting it yields
    /// [`SolveResult::Unknown`].
    fn set_conflict_budget(&mut self, budget: Option<u64>);

    /// Installs an armed resource budget (deadline, effort caps,
    /// cancellation) governing all following solve calls.
    ///
    /// The default implementation ignores the budget: such a backend
    /// simply never stops early, which is sound (it can only return more
    /// decided verdicts) but forfeits resource governance.
    fn set_budget(&mut self, budget: ArmedBudget) {
        let _ = budget;
    }

    /// Why the most recent solve returned [`SolveResult::Unknown`], or
    /// `None` if it reached a verdict. Backends without budget support
    /// return `None`.
    fn stop_reason(&self) -> Option<StopReason> {
        None
    }

    /// Enables or disables in-solver CNF preprocessing (subsumption and
    /// bounded variable elimination before search). The default
    /// implementation ignores the request: a backend without a
    /// preprocessor just searches the unsimplified formula, which is
    /// always sound.
    fn set_preprocessing(&mut self, enabled: bool) {
        let _ = enabled;
    }

    /// Exempts `v` from variable elimination in backends that preprocess.
    /// Callers freeze their live interface (e.g. BMC frame boundaries);
    /// backends without a preprocessor have nothing to protect.
    fn freeze_var(&mut self, v: Var) {
        let _ = v;
    }

    /// Hints how hard this query has proven so far (0 = first attempt,
    /// higher = repeated budget-exhausted retries). The portfolio
    /// backend uses it to decide between a single inline solver and a
    /// full diversified race; single-solver backends have no use for it.
    fn set_escalation_level(&mut self, level: u32) {
        let _ = level;
    }

    /// Labels metric samples emitted during following solve calls (e.g.
    /// `"prop=fc"`), so per-obligation histograms can be separated by
    /// property class. Backends that emit no metrics ignore it.
    fn set_metrics_scope(&mut self, scope: &str) {
        let _ = scope;
    }

    /// Snapshots the surviving learnt-clause core (size-capped, count-
    /// capped, highest-activity first) for warm-starting a future run
    /// over an identical CNF. The default implementation exports nothing
    /// — a backend without a learnt database has no core to offer, and
    /// an empty export is always sound.
    fn export_learnts(&self, max_len: usize, max_count: usize) -> Vec<Vec<Lit>> {
        let _ = (max_len, max_count);
        Vec::new()
    }

    /// Installs warm-start learnt clauses previously exported from an
    /// identical CNF as redundant clauses. Implied clauses preserve both
    /// verdicts and models, so backends may install or ignore them
    /// freely; the default implementation ignores them (sound — the
    /// search merely re-derives what it is not told).
    fn import_learnts(&mut self, clauses: &[Vec<Lit>]) {
        let _ = clauses;
    }
}

impl SatBackend for Solver {
    fn name(&self) -> &'static str {
        "cdcl"
    }

    fn new_var(&mut self) -> Var {
        Solver::new_var(self)
    }

    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        Solver::add_clause(self, lits.iter().copied())
    }

    fn add_binary(&mut self, a: Lit, b: Lit) -> bool {
        Solver::add_binary(self, a, b)
    }

    fn add_ternary(&mut self, a: Lit, b: Lit, c: Lit) -> bool {
        Solver::add_ternary(self, a, b, c)
    }

    fn solve_under(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_with(assumptions)
    }

    fn value(&self, l: Lit) -> Option<bool> {
        self.model_lit(l)
    }

    fn stats(&self) -> SolverStats {
        Solver::stats(self)
    }

    fn num_vars(&self) -> usize {
        Solver::num_vars(self)
    }

    fn num_clauses(&self) -> usize {
        Solver::num_clauses(self)
    }

    fn set_conflict_budget(&mut self, budget: Option<u64>) {
        Solver::set_conflict_budget(self, budget);
    }

    fn set_budget(&mut self, budget: ArmedBudget) {
        Solver::set_budget(self, budget);
    }

    fn stop_reason(&self) -> Option<StopReason> {
        Solver::stop_reason(self)
    }

    fn set_preprocessing(&mut self, enabled: bool) {
        Solver::set_preprocessing(self, enabled);
    }

    fn freeze_var(&mut self, v: Var) {
        Solver::freeze_var(self, v);
    }

    fn set_metrics_scope(&mut self, scope: &str) {
        Solver::set_metrics_scope(self, Some(scope.to_string()));
    }

    fn export_learnts(&self, max_len: usize, max_count: usize) -> Vec<Vec<Lit>> {
        Solver::export_learnts(self, max_len, max_count)
    }

    fn import_learnts(&mut self, clauses: &[Vec<Lit>]) {
        Solver::import_learnts(self, clauses);
    }
}

/// DIMACS literal of `l` (1-based, negative = negated).
fn to_dimacs(l: Lit) -> i64 {
    let v = i64::from(l.var().0) + 1;
    if l.is_positive() {
        v
    } else {
        -v
    }
}

/// A backend that records every interaction as incremental DIMACS while
/// an inner CDCL solver answers the queries.
///
/// The log uses the iCNF convention: ordinary clause lines terminated by
/// `0`, and one `a <lits> 0` line per [`SatBackend::solve_under`] call
/// carrying the assumptions. [`DimacsBackend::replay`] parses such a log
/// and drives any other backend through the identical sequence — the
/// differential-testing loop used by the property tests, and the export
/// path for running recorded BMC queries on an external solver.
#[derive(Debug, Clone, Default)]
pub struct DimacsBackend {
    inner: Solver,
    log: String,
}

impl DimacsBackend {
    /// Creates an empty logging backend.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded iCNF log.
    #[must_use]
    pub fn log(&self) -> &str {
        &self.log
    }

    /// Replays an iCNF log (as produced by this backend) on `backend`,
    /// returning the result of each recorded `a …` query line.
    ///
    /// Variables are created on demand up to the highest index mentioned;
    /// comment (`c`) and header (`p`) lines are skipped.
    ///
    /// # Errors
    ///
    /// Returns [`ReplayError`] on malformed literal tokens.
    pub fn replay<B: SatBackend>(
        log: &str,
        backend: &mut B,
    ) -> Result<Vec<SolveResult>, ReplayError> {
        let mut vars: Vec<Var> = Vec::new();
        let mut results = Vec::new();
        for (lineno, raw) in log.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('c') || line.starts_with('p') {
                continue;
            }
            let (is_query, body) = match line.strip_prefix("a ") {
                Some(rest) => (true, rest),
                None if line == "a" => (true, ""),
                None => (false, line),
            };
            let mut lits = Vec::new();
            for tok in body.split_ascii_whitespace() {
                let n: i64 = tok.parse().map_err(|_| ReplayError {
                    line: lineno + 1,
                    token: tok.to_string(),
                })?;
                if n == 0 {
                    break;
                }
                let idx = usize::try_from(n.unsigned_abs()).expect("fits") - 1;
                while vars.len() <= idx {
                    vars.push(backend.new_var());
                }
                lits.push(vars[idx].lit(n > 0));
            }
            if is_query {
                results.push(backend.solve_under(&lits));
            } else {
                backend.add_clause(&lits);
            }
        }
        Ok(results)
    }

    fn log_clause(&mut self, lits: &[Lit]) {
        for &l in lits {
            write!(self.log, "{} ", to_dimacs(l)).expect("string write");
        }
        self.log.push_str("0\n");
    }
}

/// Error produced by [`DimacsBackend::replay`] on malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// The token that failed to parse.
    pub token: String,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "icnf replay error at line {}: invalid literal '{}'",
            self.line, self.token
        )
    }
}

impl std::error::Error for ReplayError {}

impl SatBackend for DimacsBackend {
    fn name(&self) -> &'static str {
        "dimacs"
    }

    fn new_var(&mut self) -> Var {
        self.inner.new_var()
    }

    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.log_clause(lits);
        SatBackend::add_clause(&mut self.inner, lits)
    }

    fn solve_under(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.log.push('a');
        for &l in assumptions {
            write!(self.log, " {}", to_dimacs(l)).expect("string write");
        }
        self.log.push_str(" 0\n");
        self.inner.solve_with(assumptions)
    }

    fn value(&self, l: Lit) -> Option<bool> {
        self.inner.model_lit(l)
    }

    fn stats(&self) -> SolverStats {
        self.inner.stats()
    }

    fn num_vars(&self) -> usize {
        self.inner.num_vars()
    }

    fn num_clauses(&self) -> usize {
        self.inner.num_clauses()
    }

    fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.inner.set_conflict_budget(budget);
    }

    fn set_budget(&mut self, budget: ArmedBudget) {
        self.inner.set_budget(budget);
    }

    fn stop_reason(&self) -> Option<StopReason> {
        self.inner.stop_reason()
    }

    fn set_preprocessing(&mut self, enabled: bool) {
        self.inner.set_preprocessing(enabled);
    }

    fn freeze_var(&mut self, v: Var) {
        self.inner.freeze_var(v);
    }

    fn set_metrics_scope(&mut self, scope: &str) {
        SatBackend::set_metrics_scope(&mut self.inner, scope);
    }

    // Learnt export/import delegates without logging: imported learnts
    // are redundant by construction, so the iCNF log stays a faithful
    // record of the original formula and queries.
    fn export_learnts(&self, max_len: usize, max_count: usize) -> Vec<Vec<Lit>> {
        self.inner.export_learnts(max_len, max_count)
    }

    fn import_learnts(&mut self, clauses: &[Vec<Lit>]) {
        self.inner.import_learnts(clauses);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a backend through a small incremental session.
    fn session<B: SatBackend>(b: &mut B) -> Vec<SolveResult> {
        let v: Vec<Var> = (0..4).map(|_| b.new_var()).collect();
        b.add_clause(&[v[0].pos(), v[1].pos()]);
        b.add_clause(&[v[0].neg(), v[2].pos()]);
        let r1 = b.solve_under(&[]);
        let r2 = b.solve_under(&[v[0].pos(), v[2].neg()]);
        b.add_clause(&[v[1].neg()]);
        let r3 = b.solve_under(&[]);
        b.add_clause(&[v[0].neg()]);
        let r4 = b.solve_under(&[]);
        vec![r1, r2, r3, r4]
    }

    #[test]
    fn solver_and_dimacs_agree() {
        let mut s = Solver::new();
        let mut d = DimacsBackend::new();
        assert_eq!(session(&mut s), session(&mut d));
        assert_eq!(s.name(), "cdcl");
        assert_eq!(d.name(), "dimacs");
    }

    #[test]
    fn log_replays_identically() {
        let mut d = DimacsBackend::new();
        let recorded = session(&mut d);
        let mut fresh = Solver::new();
        let replayed = DimacsBackend::replay(d.log(), &mut fresh).expect("well-formed log");
        assert_eq!(recorded, replayed);
        // The log holds one `a` line per query.
        assert_eq!(d.log().lines().filter(|l| l.starts_with('a')).count(), 4);
    }

    #[test]
    fn replay_rejects_garbage() {
        let mut s = Solver::new();
        let err = DimacsBackend::replay("1 x 0\n", &mut s).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains('x'));
    }

    #[test]
    fn trait_fast_paths_match_add_clause() {
        let mut a = Solver::new();
        let mut b = Solver::new();
        let va: Vec<Var> = (0..3).map(|_| SatBackend::new_var(&mut a)).collect();
        let vb: Vec<Var> = (0..3).map(|_| SatBackend::new_var(&mut b)).collect();
        SatBackend::add_binary(&mut a, va[0].pos(), va[1].neg());
        SatBackend::add_ternary(&mut a, va[0].neg(), va[1].pos(), va[2].pos());
        SatBackend::add_clause(&mut b, &[vb[0].pos(), vb[1].neg()]);
        SatBackend::add_clause(&mut b, &[vb[0].neg(), vb[1].pos(), vb[2].pos()]);
        assert_eq!(a.num_clauses(), b.num_clauses());
        assert_eq!(a.solve_under(&[va[0].pos()]), b.solve_under(&[vb[0].pos()]));
        assert_eq!(
            SatBackend::value(&a, va[1].pos()),
            SatBackend::value(&b, vb[1].pos())
        );
    }

    #[test]
    fn budget_flows_through_backend() {
        let mut d = DimacsBackend::new();
        // PHP(5,4) needs more than one conflict.
        let p: Vec<Vec<Var>> = (0..5)
            .map(|_| (0..4).map(|_| d.new_var()).collect())
            .collect();
        for row in &p {
            let lits: Vec<Lit> = row.iter().map(|v| v.pos()).collect();
            d.add_clause(&lits);
        }
        for h in 0..4 {
            let col: Vec<Var> = p.iter().map(|row| row[h]).collect();
            for (i, &a) in col.iter().enumerate() {
                for &b in &col[i + 1..] {
                    d.add_clause(&[a.neg(), b.neg()]);
                }
            }
        }
        d.set_conflict_budget(Some(1));
        assert_eq!(d.solve_under(&[]), SolveResult::Unknown);
        assert_eq!(d.stop_reason(), Some(StopReason::Conflicts));
        d.set_conflict_budget(None);
        assert_eq!(d.solve_under(&[]), SolveResult::Unsat);
        assert_eq!(d.stop_reason(), None);
    }

    /// Adds PHP(pigeons, holes) to `b` and returns the variable grid.
    fn php<B: SatBackend>(b: &mut B, pigeons: usize, holes: usize) -> Vec<Vec<Var>> {
        let p: Vec<Vec<Var>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| b.new_var()).collect())
            .collect();
        for row in &p {
            let lits: Vec<Lit> = row.iter().map(|v| v.pos()).collect();
            b.add_clause(&lits);
        }
        for h in 0..holes {
            let col: Vec<Var> = p.iter().map(|row| row[h]).collect();
            for (i, &a) in col.iter().enumerate() {
                for &b2 in &col[i + 1..] {
                    b.add_clause(&[a.neg(), b2.neg()]);
                }
            }
        }
        p
    }

    #[test]
    fn learnt_export_import_round_trip() {
        let mut cold = Solver::new();
        php(&mut cold, 7, 6);
        assert_eq!(cold.solve(), SolveResult::Unsat);
        let pack = cold.export_learnts(16, 256);
        assert!(!pack.is_empty(), "PHP(7,6) must leave arena learnts");
        assert!(pack.iter().all(|c| c.len() >= 3 && c.len() <= 16));

        // A fresh solver over the identical CNF accepts every clause and
        // still reaches the same verdict.
        let mut warm = Solver::new();
        php(&mut warm, 7, 6);
        warm.import_learnts(&pack);
        let stats = warm.stats();
        assert_eq!(stats.learnt_imported, pack.len() as u64);
        assert_eq!(stats.learnt_discarded, 0);
        assert_eq!(warm.solve(), SolveResult::Unsat);
    }

    #[test]
    fn learnt_import_discards_out_of_range_vars() {
        let mut s = Solver::new();
        let v = s.new_vars(2);
        s.add_clause([v[0].pos(), v[1].pos()]);
        s.import_learnts(&[vec![v[0].pos(), Var(999).pos()], vec![v[1].neg()]]);
        let stats = s.stats();
        assert_eq!(stats.learnt_discarded, 1);
        assert_eq!(stats.learnt_imported, 1);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn armed_budget_flows_through_backend() {
        use crate::budget::Budget;
        use std::time::Duration;
        let mut d = DimacsBackend::new();
        let v = d.new_var();
        d.add_clause(&[v.pos()]);
        d.set_budget(ArmedBudget::arm(
            &Budget::unlimited().with_timeout(Duration::ZERO),
        ));
        assert_eq!(d.solve_under(&[]), SolveResult::Unknown);
        assert_eq!(d.stop_reason(), Some(StopReason::Deadline));
        d.set_budget(ArmedBudget::unlimited());
        assert_eq!(d.solve_under(&[]), SolveResult::Sat);
    }
}
