//! A minimal DIMACS CNF parser, used by the test suite and the SAT
//! benchmark harness to load textual instances.

use crate::{Lit, Solver, Var};
use std::error::Error;
use std::fmt;

/// Error produced by [`parse_dimacs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    line: usize,
    message: String,
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dimacs parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseDimacsError {}

/// Parses DIMACS CNF text, adding its variables and clauses to `solver`.
///
/// Returns the variables created (index 0 is DIMACS variable 1). The
/// `p cnf` header is optional; comment lines (`c …`) are skipped. Clauses
/// may span lines and are terminated by `0`.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on malformed tokens or literals that
/// reference variable 0.
///
/// # Examples
///
/// ```
/// use aqed_sat::{parse_dimacs, SolveResult, Solver};
///
/// # fn main() -> Result<(), aqed_sat::ParseDimacsError> {
/// let mut s = Solver::new();
/// let vars = parse_dimacs("p cnf 2 2\n1 2 0\n-1 0\n", &mut s)?;
/// assert_eq!(vars.len(), 2);
/// assert_eq!(s.solve(), SolveResult::Sat);
/// # Ok(())
/// # }
/// ```
pub fn parse_dimacs(text: &str, solver: &mut Solver) -> Result<Vec<Var>, ParseDimacsError> {
    let mut vars: Vec<Var> = Vec::new();
    let mut clause: Vec<Lit> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('p') {
            continue;
        }
        for tok in line.split_ascii_whitespace() {
            let n: i64 = tok.parse().map_err(|_| ParseDimacsError {
                line: lineno + 1,
                message: format!("invalid literal token '{tok}'"),
            })?;
            if n == 0 {
                solver.add_clause(clause.drain(..));
                continue;
            }
            let idx = usize::try_from(n.unsigned_abs()).expect("fits") - 1;
            while vars.len() <= idx {
                vars.push(solver.new_var());
            }
            clause.push(vars[idx].lit(n > 0));
        }
    }
    if !clause.is_empty() {
        solver.add_clause(clause.drain(..));
    }
    Ok(vars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveResult;

    #[test]
    fn parses_simple_instance() {
        let mut s = Solver::new();
        let vars =
            parse_dimacs("c comment\np cnf 3 3\n1 2 0\n-1 3 0\n-3 0\n", &mut s).expect("parses");
        assert_eq!(vars.len(), 3);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(vars[2]), Some(false));
        assert_eq!(s.model_value(vars[1]), Some(true));
    }

    #[test]
    fn clause_spanning_lines() {
        let mut s = Solver::new();
        parse_dimacs("1 2\n3 0", &mut s).expect("parses");
        assert_eq!(s.num_clauses(), 1);
    }

    #[test]
    fn trailing_clause_without_zero() {
        let mut s = Solver::new();
        parse_dimacs("1 -2", &mut s).expect("parses");
        assert_eq!(s.num_clauses(), 1);
    }

    #[test]
    fn rejects_garbage() {
        let mut s = Solver::new();
        let err = parse_dimacs("1 x 0", &mut s).unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn unsat_instance() {
        let mut s = Solver::new();
        parse_dimacs("1 0\n-1 0\n", &mut s).expect("parses");
        assert_eq!(s.solve(), SolveResult::Unsat);
    }
}
