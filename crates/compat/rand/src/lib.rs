//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow slice of `rand` it actually uses: a deterministic
//! seedable generator ([`rngs::StdRng`], backed by xoshiro256++), the
//! [`Rng`] extension methods `gen`, `gen_range` and `gen_bool`, and the
//! [`SeedableRng::seed_from_u64`] constructor.
//!
//! The streams differ from upstream `rand` (which uses ChaCha12 for
//! `StdRng`); every consumer in this workspace treats the generator as
//! an arbitrary deterministic stream, so only reproducibility matters,
//! not the exact values.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full domain
/// (the `Standard` distribution in upstream `rand`).
pub trait Standard: Sized {
    /// Draws a uniform value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high]` (inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                // Modulo draw: bias is ≤ span/2^64, irrelevant for the
                // test workloads this shim serves.
                let draw = rng.next_u64() % (span + 1);
                ((low as $wide).wrapping_add(draw as $wide)) as $t
            }
        }
    )*};
}
impl_sample_uniform!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + Dec> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, self.start, self.end.dec())
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Decrement helper for converting exclusive range ends to inclusive.
pub trait Dec {
    /// Returns `self - 1`.
    fn dec(self) -> Self;
}

macro_rules! impl_dec {
    ($($t:ty),*) => {$(
        impl Dec for $t {
            fn dec(self) -> Self {
                self.checked_sub(1).expect("gen_range: empty range")
            }
        }
    )*};
}
impl_dec!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for upstream's
    /// ChaCha12-based `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: i32 = r.gen_range(1..=5);
            assert!((1..=5).contains(&x));
            let y: usize = r.gen_range(0..10);
            assert!(y < 10);
            let z: i32 = r.gen_range(-4..4);
            assert!((-4..4).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!(0..100).map(|_| r.gen_bool(0.0)).any(|b| b));
        assert!((0..100).map(|_| r.gen_bool(1.0)).all(|b| b));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads={heads}");
    }
}
