//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of proptest its test suites use: the [`proptest!`]
//! macro (with `#![proptest_config(...)]`), [`Strategy`] with
//! `prop_map`, integer-range / tuple / `any::<T>()` strategies,
//! `prop::collection::vec`, `prop::bool::weighted`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from upstream, acceptable for this workspace's suites:
//!
//! * **No shrinking.** A failing case reports its case index and seed
//!   (deterministic: rerunning reproduces it) instead of a minimized
//!   input.
//! * Value generation draws from the workspace's vendored xoshiro-based
//!   `rand`, so generated streams differ from upstream proptest.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Why a test case did not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should be retried
    /// with fresh inputs.
    Reject,
}

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns true (retry on reject).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 10000 candidates", self.whence);
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`prop_oneof!`]: each draw picks one of the
/// alternatives uniformly at random and delegates to it.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Wraps a non-empty list of boxed alternatives.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Boxes a strategy for [`Union`], guiding inference in [`prop_oneof!`].
pub fn boxed_strategy<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Picks uniformly among several strategies with the same value type.
///
/// Unlike upstream proptest, alternatives are unweighted: each draw
/// selects one alternative with equal probability.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed_strategy($s)),+])
    };
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The unconstrained strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

pub mod prop {
    //! Namespaced strategy constructors (`prop::collection::vec`, …).

    pub mod collection {
        //! Collection strategies.

        use super::super::{SizeRange, Strategy, VecStrategy};

        /// A strategy for vectors whose length falls in `size` and whose
        /// elements come from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    pub mod bool {
        //! Boolean strategies.

        use super::super::WeightedBool;

        /// A strategy yielding `true` with probability `probability`.
        pub fn weighted(probability: f64) -> WeightedBool {
            WeightedBool { probability }
        }
    }
}

/// Inclusive length bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.end > r.start, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy produced by [`prop::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy produced by [`prop::bool::weighted`].
#[derive(Debug, Clone, Copy)]
pub struct WeightedBool {
    probability: f64,
}

impl Strategy for WeightedBool {
    type Value = bool;

    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.gen_bool(self.probability)
    }
}

pub mod test_runner {
    //! Runner configuration.

    /// Subset of proptest's run configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

/// Derives the per-case RNG seed. Deterministic so failures reproduce.
#[must_use]
pub fn case_seed(fn_name: &str, case: u32, attempt: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in fn_name
        .bytes()
        .chain(case.to_le_bytes())
        .chain(attempt.to_le_bytes())
    {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs one property over `cases` generated inputs.
///
/// `run` receives a per-case RNG and returns `Err(Reject)` when
/// `prop_assume!` rejects the inputs (the case is retried with a fresh
/// seed, up to a rejection cap).
pub fn run_property<F>(fn_name: &str, cases: u32, mut run: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    for case in 0..cases {
        let mut rejects = 0u32;
        loop {
            let seed = case_seed(fn_name, case, rejects);
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(&mut rng)));
            match outcome {
                Ok(Ok(())) => break,
                Ok(Err(TestCaseError::Reject)) => {
                    rejects += 1;
                    assert!(
                        rejects < 10_000,
                        "{fn_name}: case {case} rejected 10000 inputs via prop_assume!"
                    );
                }
                Err(panic) => {
                    eprintln!(
                        "proptest shim: property '{fn_name}' failed at case {case} \
                         (seed {seed:#018x}); rerun reproduces it deterministically"
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
    }
}

/// Defines property tests over generated inputs (shim of proptest's
/// macro; same surface syntax, no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                $crate::run_property(stringify!($name), config.cases, |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property (shim: panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (shim: panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (shim: panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Rejects the current case, retrying with fresh inputs.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    //! The aggregate import test files use.

    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop, Just, Strategy, TestCaseError, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 1u32..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vec_and_tuple_composition(
            v in prop::collection::vec((1i32..=9, any::<bool>()), 2..6),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for &(n, _) in &v {
                prop_assert!((1..=9).contains(&n));
            }
        }

        #[test]
        fn map_and_assume(x in (0u64..256).prop_map(|v| v * 2)) {
            prop_assume!(x != 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x, 1);
        }
    }

    #[test]
    fn weighted_bool_respects_probability() {
        use rand::{rngs::StdRng, SeedableRng};
        let s = prop::bool::weighted(0.9);
        let mut rng = StdRng::seed_from_u64(1);
        let trues = (0..1000).filter(|_| s.generate(&mut rng)).count();
        assert!(trues > 800, "trues={trues}");
    }

    #[test]
    fn seeds_are_deterministic() {
        assert_eq!(crate::case_seed("f", 3, 0), crate::case_seed("f", 3, 0));
        assert_ne!(crate::case_seed("f", 3, 0), crate::case_seed("f", 4, 0));
    }
}
