//! Offline drop-in subset of the `criterion` benchmark API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of criterion the benches use: `Criterion`,
//! benchmark groups with `sample_size` / `measurement_time` /
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `black_box`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: per sample, the closure runs in a timed batch and
//! the mean per-iteration time is recorded; the reported statistics are
//! the min / median / max over samples (upstream criterion reports a
//! confidence interval — the median is comparable for the repo's
//! before/after evidence). Output lines mimic criterion's
//! `name  time: [low mid high]` shape so existing tooling can grep them.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export point for the measurement plumbing macros expect.
pub mod measurement {
    /// Marker for the default wall-clock measurement.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct WallTime;
}

/// Opaque value barrier preventing the optimizer from deleting a
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing harness handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    /// Mean per-iteration nanoseconds of each sample.
    samples: Vec<f64>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly and records per-iteration timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + calibration: how many iterations fit in ~1/10 of the
        // per-sample budget?
        let calib_start = Instant::now();
        black_box(routine());
        let one = calib_start.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters = ((per_sample / one.as_secs_f64()).clamp(1.0, 1_000_000.0)) as u64;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t.elapsed().as_secs_f64();
            self.samples.push(elapsed * 1e9 / iters as f64);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut b);
        self.report(&id, &b.samples);
        self
    }

    /// Benchmarks `f` under `id` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut b, input);
        self.report(&id, &b.samples);
        self
    }

    fn report(&self, id: &BenchmarkId, samples: &[f64]) {
        if samples.is_empty() {
            println!("{}/{:<24} no samples recorded", self.name, id.id);
            return;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        let median = sorted[sorted.len() / 2];
        println!(
            "{}/{:<24} time:   [{} {} {}]",
            self.name,
            id.id,
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max)
        );
    }

    /// Ends the group (upstream finalizes reports here; a no-op shim).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            _criterion: self,
        }
    }

    /// Upstream parses CLI filters here; the shim accepts and ignores
    /// them (all benches run).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main` entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
