//! Input traces: recorded stimulus for replay and counterexample display.

use aqed_bitvec::Bv;
use aqed_expr::{ExprPool, VarId};
use std::fmt::Write as _;

/// A sequence of per-cycle input assignments.
///
/// Produced by the BMC engine as a counterexample witness and consumed by
/// the simulator for replay; also handy for scripted testbenches.
///
/// # Examples
///
/// ```
/// use aqed_tsys::Trace;
/// use aqed_expr::{ExprPool, VarKind};
/// use aqed_bitvec::Bv;
///
/// let mut p = ExprPool::new();
/// let x = p.var("x", 8, VarKind::Input);
/// let mut t = Trace::new();
/// t.push_frame(vec![(x, Bv::new(8, 5))]);
/// t.push_frame(vec![(x, Bv::new(8, 9))]);
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.value(1, x), Some(Bv::new(8, 9)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    frames: Vec<Vec<(VarId, Bv)>>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cycles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the trace has no cycles.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Appends one cycle of input assignments.
    pub fn push_frame(&mut self, inputs: Vec<(VarId, Bv)>) {
        self.frames.push(inputs);
    }

    /// The input assignments of cycle `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.len()`.
    #[must_use]
    pub fn frame(&self, k: usize) -> &[(VarId, Bv)] {
        &self.frames[k]
    }

    /// Adds `extra` assignments to every frame (skipping variables a
    /// frame already records) and re-sorts each frame by variable. The
    /// BMC engine uses this to widen a cone-of-influence counterexample
    /// back to the full input set before simulator replay.
    pub fn pad_frames(&mut self, extra: &[(VarId, Bv)]) {
        for frame in &mut self.frames {
            for &(v, val) in extra {
                if !frame.iter().any(|&(fv, _)| fv == v) {
                    frame.push((v, val));
                }
            }
            frame.sort_by_key(|&(v, _)| v);
        }
    }

    /// The value of input `v` at cycle `k`, if recorded.
    #[must_use]
    pub fn value(&self, k: usize, v: VarId) -> Option<Bv> {
        self.frames
            .get(k)?
            .iter()
            .find(|(var, _)| *var == v)
            .map(|&(_, val)| val)
    }

    /// Renders the trace as an aligned text table (cycles as rows, inputs
    /// as columns) using the pool's variable names.
    #[must_use]
    pub fn to_table(&self, pool: &ExprPool) -> String {
        let mut vars: Vec<VarId> = Vec::new();
        for f in &self.frames {
            for &(v, _) in f {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
        }
        let headers: Vec<String> = vars.iter().map(|&v| pool.var_name(v).to_string()).collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len().max(4)).collect();
        let mut rows: Vec<Vec<String>> = Vec::new();
        for (k, _) in self.frames.iter().enumerate() {
            let row: Vec<String> = vars
                .iter()
                .map(|&v| {
                    self.value(k, v)
                        .map(|b| format!("{:x}", b))
                        .unwrap_or_else(|| "-".to_string())
                })
                .collect();
            for (w, cell) in widths.iter_mut().zip(&row) {
                *w = (*w).max(cell.len());
            }
            rows.push(row);
        }
        let mut out = String::new();
        let _ = write!(out, "{:>5} ", "cycle");
        for (h, w) in headers.iter().zip(&widths) {
            let _ = write!(out, " {h:>w$}");
        }
        out.push('\n');
        for (k, row) in rows.iter().enumerate() {
            let _ = write!(out, "{k:>5} ");
            for (cell, w) in row.iter().zip(&widths) {
                let _ = write!(out, " {cell:>w$}");
            }
            out.push('\n');
        }
        out
    }
}

impl FromIterator<Vec<(VarId, Bv)>> for Trace {
    fn from_iter<T: IntoIterator<Item = Vec<(VarId, Bv)>>>(iter: T) -> Self {
        Trace {
            frames: iter.into_iter().collect(),
        }
    }
}

impl Extend<Vec<(VarId, Bv)>> for Trace {
    fn extend<T: IntoIterator<Item = Vec<(VarId, Bv)>>>(&mut self, iter: T) {
        self.frames.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqed_expr::VarKind;

    #[test]
    fn build_and_query() {
        let mut p = ExprPool::new();
        let a = p.var("a", 8, VarKind::Input);
        let b = p.var("b", 1, VarKind::Input);
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push_frame(vec![(a, Bv::new(8, 1)), (b, Bv::from_bool(true))]);
        t.push_frame(vec![(a, Bv::new(8, 2))]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.value(0, b), Some(Bv::from_bool(true)));
        assert_eq!(t.value(1, b), None);
        assert_eq!(t.frame(1), &[(a, Bv::new(8, 2))]);
        assert_eq!(t.value(5, a), None);
    }

    #[test]
    fn collects_from_iterator() {
        let mut p = ExprPool::new();
        let a = p.var("a", 4, VarKind::Input);
        let t: Trace = (0..3u64).map(|k| vec![(a, Bv::new(4, k))]).collect();
        assert_eq!(t.len(), 3);
        let mut t2 = Trace::new();
        t2.extend((0..2u64).map(|k| vec![(a, Bv::new(4, k))]));
        assert_eq!(t2.len(), 2);
    }

    #[test]
    fn table_rendering() {
        let mut p = ExprPool::new();
        let a = p.var("data", 8, VarKind::Input);
        let b = p.var("v", 1, VarKind::Input);
        let mut t = Trace::new();
        t.push_frame(vec![(a, Bv::new(8, 0xAB)), (b, Bv::from_bool(true))]);
        t.push_frame(vec![(a, Bv::new(8, 0x01))]);
        let table = t.to_table(&p);
        assert!(table.contains("data"));
        assert!(table.contains("ab"));
        assert!(table.lines().count() == 3);
        // Missing value rendered as '-'.
        assert!(table.lines().last().unwrap().contains('-'));
    }
}
