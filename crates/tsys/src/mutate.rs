//! Systematic fault injection for transition systems.
//!
//! The A-QED paper evaluates the methodology by seeding accelerator RTL
//! with realistic logic bugs (operand mix-ups, off-by-one constants,
//! dropped register updates) and checking that the specification-free
//! properties still catch them. This module reproduces that experiment
//! programmatically: [`enumerate_mutants`] walks a design's next-state
//! logic and yields one mutated copy of the system per injection site.
//!
//! Mutations rewrite only next-state expressions — the paper's bug
//! classes are all sequential-logic bugs — and every mutant still
//! [`validate`](TransitionSystem::validate)s, so it can go straight into
//! the A-QED harness. The original system and its expression pool are
//! shared: mutants reference new expressions hash-consed into the same
//! pool.

use crate::TransitionSystem;
use aqed_bitvec::Bv;
use aqed_expr::{ExprPool, ExprRef, Node};
use std::collections::HashMap;

/// A paper-style RTL bug class to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mutator {
    /// Swap the operands of a non-commutative binary operator
    /// (`a - b` → `b - a`, `a << b` → `b << a`, …) — the classic
    /// wrong-operand wiring bug.
    OperandSwap,
    /// Increment a constant by one (wrapping at its width) — off-by-one
    /// thresholds, wrong reset values, mis-sized comparisons.
    OffByOneConstant,
    /// Replace a register's next-state function with the register itself,
    /// so the latch never updates — a dropped enable or missing
    /// assignment.
    DroppedLatchUpdate,
}

impl std::fmt::Display for Mutator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Mutator::OperandSwap => "operand-swap",
            Mutator::OffByOneConstant => "off-by-one-constant",
            Mutator::DroppedLatchUpdate => "dropped-latch-update",
        })
    }
}

/// One injected bug: a mutated copy of the design plus a human-readable
/// description of what was broken where.
#[derive(Debug, Clone)]
pub struct Mutant {
    /// The mutated system (shares the caller's expression pool).
    pub ts: TransitionSystem,
    /// Which mutator produced this mutant.
    pub mutator: Mutator,
    /// What was changed, e.g. `"operand-swap of Sub in next(count)"`.
    pub description: String,
}

/// Enumerates every applicable injection site of `mutator` in the
/// next-state logic of `ts`, returning one mutant per site.
///
/// Sites whose mutation is a no-op after hash-consing (e.g. swapping
/// syntactically equal operands) are skipped, so every returned mutant
/// is structurally different from the original design. The list can be
/// large for big designs; callers typically sample it.
#[must_use]
pub fn enumerate_mutants(
    ts: &TransitionSystem,
    pool: &mut ExprPool,
    mutator: Mutator,
) -> Vec<Mutant> {
    let mut mutants = Vec::new();
    let states: Vec<_> = ts.states().to_vec();
    for sv in &states {
        let Some(next) = sv.next else { continue };
        let reg = pool.var_name(sv.var).to_string();
        match mutator {
            Mutator::DroppedLatchUpdate => {
                let hold = pool.var_expr(sv.var);
                if hold == next {
                    continue; // the register already never updates
                }
                let mut mutated = ts.clone();
                mutated.set_next(sv.var, hold);
                mutants.push(Mutant {
                    ts: mutated,
                    mutator,
                    description: format!("dropped update of register '{reg}'"),
                });
            }
            Mutator::OperandSwap | Mutator::OffByOneConstant => {
                for site in collect_sites(pool, next, mutator) {
                    let (replacement, what) = match *pool.node(site) {
                        Node::Binary(op, a, b) => (pool.binary(op, b, a), format!("{op:?}")),
                        Node::Const(bv) => {
                            let bumped = Bv::new(bv.width(), bv.to_u64().wrapping_add(1));
                            (pool.constant(bumped), format!("constant {bv}"))
                        }
                        _ => continue,
                    };
                    if replacement == site {
                        continue;
                    }
                    let mutated_next = replace_expr(pool, next, site, replacement);
                    if mutated_next == next {
                        continue;
                    }
                    let mut mutated = ts.clone();
                    mutated.set_next(sv.var, mutated_next);
                    mutants.push(Mutant {
                        ts: mutated,
                        mutator,
                        description: format!("{mutator} of {what} in next('{reg}')"),
                    });
                }
            }
        }
    }
    mutants
}

/// Collects the injection sites of `mutator` in `root`, in deterministic
/// first-visit order (each shared node reported once).
fn collect_sites(pool: &ExprPool, root: ExprRef, mutator: Mutator) -> Vec<ExprRef> {
    let mut sites = Vec::new();
    let mut seen = vec![false; pool.len()];
    let mut stack = vec![root];
    while let Some(e) = stack.pop() {
        if std::mem::replace(&mut seen[e.index()], true) {
            continue;
        }
        match *pool.node(e) {
            Node::Const(_) => {
                if mutator == Mutator::OffByOneConstant {
                    sites.push(e);
                }
            }
            Node::Var(_) => {}
            Node::Unary(_, a) => stack.push(a),
            Node::Binary(op, a, b) => {
                if mutator == Mutator::OperandSwap && !op.is_commutative() && a != b {
                    sites.push(e);
                }
                stack.push(a);
                stack.push(b);
            }
            Node::Ite { cond, then_, else_ } => {
                stack.push(cond);
                stack.push(then_);
                stack.push(else_);
            }
            Node::Extract { arg, .. } | Node::Extend { arg, .. } => stack.push(arg),
        }
    }
    sites
}

/// Rebuilds `root` with the subtree at `target` replaced by `with`,
/// sharing every untouched node. Iterative with an explicit stack — the
/// DAG can be deep — and memoized so shared subtrees rewrite once.
fn replace_expr(pool: &mut ExprPool, root: ExprRef, target: ExprRef, with: ExprRef) -> ExprRef {
    let mut memo: HashMap<ExprRef, ExprRef> = HashMap::new();
    memo.insert(target, with);
    let mut stack = vec![root];
    while let Some(&e) = stack.last() {
        if memo.contains_key(&e) {
            stack.pop();
            continue;
        }
        let node = pool.node(e).clone();
        let children: Vec<ExprRef> = match node {
            Node::Const(_) | Node::Var(_) => Vec::new(),
            Node::Unary(_, a) => vec![a],
            Node::Binary(_, a, b) => vec![a, b],
            Node::Ite { cond, then_, else_ } => vec![cond, then_, else_],
            Node::Extract { arg, .. } | Node::Extend { arg, .. } => vec![arg],
        };
        let pending: Vec<ExprRef> = children
            .iter()
            .copied()
            .filter(|c| !memo.contains_key(c))
            .collect();
        if !pending.is_empty() {
            stack.extend(pending);
            continue;
        }
        stack.pop();
        let rebuilt = match node {
            Node::Const(_) | Node::Var(_) => e,
            Node::Unary(op, a) => {
                let a2 = memo[&a];
                if a2 == a {
                    e
                } else {
                    pool.unary(op, a2)
                }
            }
            Node::Binary(op, a, b) => {
                let (a2, b2) = (memo[&a], memo[&b]);
                if a2 == a && b2 == b {
                    e
                } else {
                    pool.binary(op, a2, b2)
                }
            }
            Node::Ite { cond, then_, else_ } => {
                let (c2, t2, e2) = (memo[&cond], memo[&then_], memo[&else_]);
                if c2 == cond && t2 == then_ && e2 == else_ {
                    e
                } else {
                    pool.ite(c2, t2, e2)
                }
            }
            Node::Extract { hi, lo, arg } => {
                let a2 = memo[&arg];
                if a2 == arg {
                    e
                } else {
                    pool.extract(a2, hi, lo)
                }
            }
            Node::Extend { signed, width, arg } => {
                let a2 = memo[&arg];
                if a2 == arg {
                    e
                } else if signed {
                    pool.sext(a2, width)
                } else {
                    pool.zext(a2, width)
                }
            }
        };
        memo.insert(e, rebuilt);
    }
    memo[&root]
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqed_expr::VarKind;

    /// A 4-bit saturating down-counter: `count' = load ? limit : count - 1
    /// (floored at 0)`.
    fn counter(pool: &mut ExprPool) -> TransitionSystem {
        let mut ts = TransitionSystem::new("counter");
        let load = ts.add_input(pool, "load", 1);
        let count = ts.add_state(pool, "count", 4);
        ts.set_init_const(pool, count, 0);
        let count_e = pool.var_expr(count);
        let load_e = pool.var_expr(load);
        let limit = pool.lit(4, 9);
        let one = pool.lit(4, 1);
        let zero = pool.lit(4, 0);
        let dec = pool.sub(count_e, one);
        let at_zero = pool.eq(count_e, zero);
        let held = pool.ite(at_zero, zero, dec);
        let next = pool.ite(load_e, limit, held);
        ts.set_next(count, next);
        ts
    }

    #[test]
    fn operand_swap_finds_noncommutative_sites() {
        let mut pool = ExprPool::new();
        let ts = counter(&mut pool);
        let mutants = enumerate_mutants(&ts, &mut pool, Mutator::OperandSwap);
        // `count - 1` is the only non-commutative site (Eq is commutative).
        assert_eq!(mutants.len(), 1, "{mutants:?}");
        assert!(mutants[0].description.contains("Sub"), "{mutants:?}");
        mutants[0].ts.validate(&pool).expect("mutant must validate");
        // The mutated next-state function differs from the original.
        assert_ne!(mutants[0].ts.states()[0].next, ts.states()[0].next);
    }

    #[test]
    fn off_by_one_bumps_each_constant() {
        let mut pool = ExprPool::new();
        let ts = counter(&mut pool);
        let mutants = enumerate_mutants(&ts, &mut pool, Mutator::OffByOneConstant);
        // Constants 9, 1 and 0 (0 is shared by the comparison and the
        // floor but is one hash-consed site).
        assert_eq!(mutants.len(), 3, "{mutants:?}");
        for m in &mutants {
            m.ts.validate(&pool).expect("mutant must validate");
            assert_ne!(m.ts.states()[0].next, ts.states()[0].next);
        }
    }

    #[test]
    fn dropped_latch_freezes_register() {
        let mut pool = ExprPool::new();
        let ts = counter(&mut pool);
        let mutants = enumerate_mutants(&ts, &mut pool, Mutator::DroppedLatchUpdate);
        assert_eq!(mutants.len(), 1);
        let count = ts.states()[0].var;
        let held = pool.var_expr(count);
        assert_eq!(mutants[0].ts.states()[0].next, Some(held));
    }

    #[test]
    fn already_frozen_register_yields_no_dropped_latch_mutant() {
        let mut pool = ExprPool::new();
        let mut ts = TransitionSystem::new("frozen");
        let s = ts.add_state(&mut pool, "s", 2);
        ts.set_init_const(&mut pool, s, 1);
        let hold = pool.var_expr(s);
        ts.set_next(s, hold);
        let mutants = enumerate_mutants(&ts, &mut pool, Mutator::DroppedLatchUpdate);
        assert!(mutants.is_empty());
    }

    #[test]
    fn replace_preserves_unrelated_structure() {
        let mut pool = ExprPool::new();
        let x = pool.var("x", 4, VarKind::Input);
        let xe = pool.var_expr(x);
        let one = pool.lit(4, 1);
        let two = pool.lit(4, 2);
        let sum = pool.add(xe, one);
        let root = pool.mul(sum, sum);
        let swapped = replace_expr(&mut pool, root, one, two);
        let expected_sum = pool.add(xe, two);
        let expected = pool.mul(expected_sum, expected_sum);
        assert_eq!(swapped, expected);
        // Untouched roots are returned as-is.
        assert_eq!(replace_expr(&mut pool, root, two, one), root);
    }
}
