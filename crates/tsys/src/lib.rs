//! Finite state transition systems — the formal accelerator model of the
//! A-QED paper (Definition 1) — plus a cycle-accurate simulator.
//!
//! A [`TransitionSystem`] is the tuple `(S, s_init, rdin, A, a_⊥, D, O,
//! o_⊥, T, F)` from the paper, realised at the RTL level:
//!
//! * the state set `S` is the product of the *state variables* (registers),
//! * `s_init` is given by per-register init expressions,
//! * the transition function `T` is given by per-register *next*
//!   expressions over state and input variables,
//! * the output function `F` and predicates such as `rdin` are named
//!   *output* expressions,
//! * invariants the environment guarantees (e.g. input encodings) are
//!   *constraints*, and
//! * safety properties are *bad* expressions (a bad expression evaluating
//!   to 1 is a property violation — BTOR2 convention).
//!
//! The [`Simulator`] executes a system cycle by cycle on concrete
//! [`Bv`](aqed_bitvec::Bv) values; [`Trace`] records executions (and BMC
//! counterexamples) for replay and display.
//!
//! # Examples
//!
//! A 4-bit counter with an enable input:
//!
//! ```
//! use aqed_tsys::{Simulator, TransitionSystem};
//! use aqed_expr::ExprPool;
//! use aqed_bitvec::Bv;
//!
//! let mut p = ExprPool::new();
//! let mut ts = TransitionSystem::new("counter");
//! let en = ts.add_input(&mut p, "en", 1);
//! let count = ts.add_state(&mut p, "count", 4);
//! let count_e = p.var_expr(count);
//! let one = p.lit(4, 1);
//! let inc = p.add(count_e, one);
//! let en_e = p.var_expr(en);
//! let next = p.ite(en_e, inc, count_e);
//! ts.set_init_const(&mut p, count, 0);
//! ts.set_next(count, next);
//! ts.add_output("value", count_e);
//! ts.validate(&p).expect("well-formed");
//!
//! let mut sim = Simulator::new(&ts, &p);
//! sim.step_with(&ts, &p, &[(en, Bv::from_bool(true))]);
//! sim.step_with(&ts, &p, &[(en, Bv::from_bool(false))]);
//! sim.step_with(&ts, &p, &[(en, Bv::from_bool(true))]);
//! assert_eq!(sim.state(count), Bv::new(4, 2));
//! ```

mod btor2;
mod coi;
mod mem;
mod mutate;
mod sim;
mod trace;
mod vcd;

pub use btor2::{btor2_check, btor2_stats, to_btor2, Btor2Stats};
pub use coi::{coi_slice, coi_slice_cached, CoiCache, CoiSlice};
pub use mem::Mem;
pub use mutate::{enumerate_mutants, Mutant, Mutator};
pub use sim::{Simulator, StepRecord};
pub use trace::Trace;
pub use vcd::to_vcd;

use aqed_expr::{ExprPool, ExprRef, VarId, VarKind};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A state variable (register) with its initialisation and next-state
/// function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateVar {
    /// The symbolic variable holding the register's current value.
    pub var: VarId,
    /// Initial value; `None` leaves the register uninitialised (free at
    /// cycle 0 — useful for modelling unknown power-on state).
    pub init: Option<ExprRef>,
    /// Next-state expression over state and input variables.
    pub next: Option<ExprRef>,
}

/// Error returned by [`TransitionSystem::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateSystemError {
    /// A state variable has no next-state expression.
    MissingNext {
        /// Name of the offending register.
        name: String,
    },
    /// An expression has the wrong width for its role.
    WidthMismatch {
        /// Description of the offending expression.
        context: String,
        /// Expected width.
        expected: u32,
        /// Actual width.
        actual: u32,
    },
    /// An expression references a variable that is neither a declared
    /// input nor a declared state of this system.
    ForeignVariable {
        /// Description of where the variable occurs.
        context: String,
        /// Name of the foreign variable.
        name: String,
    },
}

impl fmt::Display for ValidateSystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateSystemError::MissingNext { name } => {
                write!(f, "state variable '{name}' has no next-state expression")
            }
            ValidateSystemError::WidthMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "width mismatch in {context}: expected {expected}, got {actual}"
            ),
            ValidateSystemError::ForeignVariable { context, name } => {
                write!(f, "{context} references undeclared variable '{name}'")
            }
        }
    }
}

impl Error for ValidateSystemError {}

/// A synchronous finite-state transition system over an [`ExprPool`].
///
/// See the [crate-level documentation](crate) for the paper mapping and an
/// example.
#[derive(Debug, Clone, Default)]
pub struct TransitionSystem {
    name: String,
    inputs: Vec<VarId>,
    states: Vec<StateVar>,
    state_index: HashMap<VarId, usize>,
    outputs: Vec<(String, ExprRef)>,
    constraints: Vec<ExprRef>,
    bads: Vec<(String, ExprRef)>,
}

impl TransitionSystem {
    /// Creates an empty system with a diagnostic name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        TransitionSystem {
            name: name.into(),
            ..Self::default()
        }
    }

    /// The system's diagnostic name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares a primary input of the given width. Returns its variable.
    pub fn add_input(&mut self, pool: &mut ExprPool, name: impl Into<String>, width: u32) -> VarId {
        let v = pool.var(name, width, VarKind::Input);
        self.inputs.push(v);
        v
    }

    /// Declares a state variable (register) of the given width. Its init
    /// and next expressions are set separately.
    pub fn add_state(&mut self, pool: &mut ExprPool, name: impl Into<String>, width: u32) -> VarId {
        let v = pool.var(name, width, VarKind::State);
        self.state_index.insert(v, self.states.len());
        self.states.push(StateVar {
            var: v,
            init: None,
            next: None,
        });
        v
    }

    /// Sets the initial-value expression of state `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a state of this system or the widths differ.
    pub fn set_init(&mut self, pool: &ExprPool, v: VarId, init: ExprRef) {
        let idx = self.state_idx(v);
        assert!(
            pool.width(init) == pool.var_width(v),
            "init width {} differs from state '{}' width {}",
            pool.width(init),
            pool.var_name(v),
            pool.var_width(v)
        );
        self.states[idx].init = Some(init);
    }

    /// Sets the initial value of state `v` to a constant.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a state of this system.
    pub fn set_init_const(&mut self, pool: &mut ExprPool, v: VarId, value: u64) {
        let w = pool.var_width(v);
        let c = pool.lit(w, value);
        self.set_init(pool, v, c);
    }

    /// Sets the next-state expression of state `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a state of this system or the widths differ.
    pub fn set_next(&mut self, v: VarId, next: ExprRef) {
        let idx = self.state_idx(v);
        self.states[idx].next = Some(next);
    }

    /// Convenience: declares a state with a constant init and next set in
    /// one call.
    pub fn add_register(
        &mut self,
        pool: &mut ExprPool,
        name: impl Into<String>,
        width: u32,
        init: u64,
    ) -> VarId {
        let v = self.add_state(pool, name, width);
        self.set_init_const(pool, v, init);
        v
    }

    fn state_idx(&self, v: VarId) -> usize {
        *self
            .state_index
            .get(&v)
            .unwrap_or_else(|| panic!("variable is not a state of system '{}'", self.name))
    }

    /// Adds a named output expression.
    pub fn add_output(&mut self, name: impl Into<String>, expr: ExprRef) {
        self.outputs.push((name.into(), expr));
    }

    /// Adds an environment constraint (1-bit expression assumed true in
    /// every cycle).
    pub fn add_constraint(&mut self, expr: ExprRef) {
        self.constraints.push(expr);
    }

    /// Adds a named bad-state property (1-bit expression; evaluating to 1
    /// is a violation).
    pub fn add_bad(&mut self, name: impl Into<String>, expr: ExprRef) {
        self.bads.push((name.into(), expr));
    }

    /// The declared inputs, in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[VarId] {
        &self.inputs
    }

    /// The state variables, in declaration order.
    #[must_use]
    pub fn states(&self) -> &[StateVar] {
        &self.states
    }

    /// Whether `v` is a state variable of this system.
    #[must_use]
    pub fn is_state(&self, v: VarId) -> bool {
        self.state_index.contains_key(&v)
    }

    /// The named outputs.
    #[must_use]
    pub fn outputs(&self) -> &[(String, ExprRef)] {
        &self.outputs
    }

    /// Looks up an output expression by name.
    #[must_use]
    pub fn output(&self, name: &str) -> Option<ExprRef> {
        self.outputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, e)| e)
    }

    /// The environment constraints.
    #[must_use]
    pub fn constraints(&self) -> &[ExprRef] {
        &self.constraints
    }

    /// The named bad-state properties.
    #[must_use]
    pub fn bads(&self) -> &[(String, ExprRef)] {
        &self.bads
    }

    /// Looks up a bad-state property index by name.
    #[must_use]
    pub fn bad_index(&self, name: &str) -> Option<usize> {
        self.bads.iter().position(|(n, _)| n == name)
    }

    /// Checks structural well-formedness: every state has a next function
    /// of the right width, inits have the right width, constraints and
    /// bads are 1-bit, and every referenced variable is declared.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateSystemError`] found.
    pub fn validate(&self, pool: &ExprPool) -> Result<(), ValidateSystemError> {
        for s in &self.states {
            let w = pool.var_width(s.var);
            let name = pool.var_name(s.var).to_string();
            let next = s
                .next
                .ok_or(ValidateSystemError::MissingNext { name: name.clone() })?;
            if pool.width(next) != w {
                return Err(ValidateSystemError::WidthMismatch {
                    context: format!("next({name})"),
                    expected: w,
                    actual: pool.width(next),
                });
            }
            if let Some(init) = s.init {
                if pool.width(init) != w {
                    return Err(ValidateSystemError::WidthMismatch {
                        context: format!("init({name})"),
                        expected: w,
                        actual: pool.width(init),
                    });
                }
            }
        }
        for (name, e) in &self.outputs {
            self.check_support(pool, *e, &format!("output '{name}'"))?;
        }
        for (i, e) in self.constraints.iter().enumerate() {
            if pool.width(*e) != 1 {
                return Err(ValidateSystemError::WidthMismatch {
                    context: format!("constraint #{i}"),
                    expected: 1,
                    actual: pool.width(*e),
                });
            }
            self.check_support(pool, *e, &format!("constraint #{i}"))?;
        }
        for (name, e) in &self.bads {
            if pool.width(*e) != 1 {
                return Err(ValidateSystemError::WidthMismatch {
                    context: format!("bad '{name}'"),
                    expected: 1,
                    actual: pool.width(*e),
                });
            }
            self.check_support(pool, *e, &format!("bad '{name}'"))?;
        }
        for s in &self.states {
            if let Some(next) = s.next {
                self.check_support(pool, next, &format!("next({})", pool.var_name(s.var)))?;
            }
            if let Some(init) = s.init {
                // Inits may only reference other initial state vars or
                // nothing; we allow state vars (interpreted at cycle 0).
                self.check_support(pool, init, &format!("init({})", pool.var_name(s.var)))?;
            }
        }
        Ok(())
    }

    fn check_support(
        &self,
        pool: &ExprPool,
        e: ExprRef,
        context: &str,
    ) -> Result<(), ValidateSystemError> {
        for v in pool.support(e) {
            if !self.is_state(v) && !self.inputs.contains(&v) {
                return Err(ValidateSystemError::ForeignVariable {
                    context: context.to_string(),
                    name: pool.var_name(v).to_string(),
                });
            }
        }
        Ok(())
    }

    /// Merges another system into this one: its inputs, states, outputs,
    /// constraints and bads are appended. Both systems must share the same
    /// [`ExprPool`]. This is how the A-QED monitor is composed with the
    /// design under verification.
    pub fn compose(&mut self, other: &TransitionSystem) {
        for &i in &other.inputs {
            if !self.inputs.contains(&i) {
                self.inputs.push(i);
            }
        }
        for s in &other.states {
            assert!(
                !self.state_index.contains_key(&s.var),
                "state '{:?}' already present in '{}'",
                s.var,
                self.name
            );
            self.state_index.insert(s.var, self.states.len());
            self.states.push(*s);
        }
        self.outputs.extend(other.outputs.iter().cloned());
        self.constraints.extend(other.constraints.iter().copied());
        self.bads.extend(other.bads.iter().cloned());
    }
}

impl fmt::Display for TransitionSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TransitionSystem('{}': {} inputs, {} states, {} outputs, {} constraints, {} bads)",
            self.name,
            self.inputs.len(),
            self.states.len(),
            self.outputs.len(),
            self.constraints.len(),
            self.bads.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqed_bitvec::Bv;

    fn counter(pool: &mut ExprPool) -> (TransitionSystem, VarId, VarId) {
        let mut ts = TransitionSystem::new("counter");
        let en = ts.add_input(pool, "en", 1);
        let c = ts.add_state(pool, "count", 4);
        let ce = pool.var_expr(c);
        let one = pool.lit(4, 1);
        let inc = pool.add(ce, one);
        let ene = pool.var_expr(en);
        let next = pool.ite(ene, inc, ce);
        ts.set_init_const(pool, c, 0);
        ts.set_next(c, next);
        ts.add_output("value", ce);
        (ts, en, c)
    }

    #[test]
    fn builds_and_validates() {
        let mut p = ExprPool::new();
        let (ts, _, c) = counter(&mut p);
        ts.validate(&p).expect("valid");
        assert_eq!(ts.inputs().len(), 1);
        assert_eq!(ts.states().len(), 1);
        assert!(ts.is_state(c));
        assert_eq!(ts.output("value"), Some(p.var_expr(c)));
        assert!(ts.output("nope").is_none());
        assert!(ts.to_string().contains("counter"));
    }

    #[test]
    fn missing_next_detected() {
        let mut p = ExprPool::new();
        let mut ts = TransitionSystem::new("bad");
        let _ = ts.add_state(&mut p, "orphan", 8);
        let err = ts.validate(&p).unwrap_err();
        assert!(matches!(err, ValidateSystemError::MissingNext { .. }));
        assert!(err.to_string().contains("orphan"));
    }

    #[test]
    fn width_mismatch_detected() {
        let mut p = ExprPool::new();
        let mut ts = TransitionSystem::new("bad");
        let s = ts.add_state(&mut p, "s", 8);
        let narrow = p.lit(4, 0);
        ts.set_next(s, narrow);
        let err = ts.validate(&p).unwrap_err();
        assert!(matches!(err, ValidateSystemError::WidthMismatch { .. }));
    }

    #[test]
    fn foreign_variable_detected() {
        let mut p = ExprPool::new();
        let mut ts = TransitionSystem::new("bad");
        let s = ts.add_state(&mut p, "s", 8);
        // Variable created directly on the pool, not declared on ts.
        let alien = p.var("alien", 8, VarKind::Input);
        let ae = p.var_expr(alien);
        ts.set_next(s, ae);
        let err = ts.validate(&p).unwrap_err();
        assert!(matches!(err, ValidateSystemError::ForeignVariable { .. }));
        assert!(err.to_string().contains("alien"));
    }

    #[test]
    fn non_boolean_bad_rejected() {
        let mut p = ExprPool::new();
        let mut ts = TransitionSystem::new("bad");
        let s = ts.add_register(&mut p, "s", 8, 0);
        let se = p.var_expr(s);
        ts.set_next(s, se);
        ts.add_bad("wide", se);
        let err = ts.validate(&p).unwrap_err();
        assert!(matches!(err, ValidateSystemError::WidthMismatch { .. }));
    }

    #[test]
    #[should_panic(expected = "not a state")]
    fn set_next_on_input_panics() {
        let mut p = ExprPool::new();
        let mut ts = TransitionSystem::new("bad");
        let i = ts.add_input(&mut p, "i", 1);
        let e = p.var_expr(i);
        ts.set_next(i, e);
    }

    #[test]
    fn compose_merges_components() {
        let mut p = ExprPool::new();
        let (mut ts, _, c) = counter(&mut p);
        let mut mon = TransitionSystem::new("monitor");
        let seen = mon.add_register(&mut p, "seen", 1, 0);
        let ce = p.var_expr(c);
        let limit = p.lit(4, 9);
        let hit = p.uge(ce, limit);
        let seen_e = p.var_expr(seen);
        let next = p.or(seen_e, hit);
        mon.set_next(seen, next);
        mon.add_bad("count_reached_9", hit);
        ts.compose(&mon);
        ts.validate(&p).expect("composed system valid");
        assert_eq!(ts.states().len(), 2);
        assert_eq!(ts.bads().len(), 1);
        assert_eq!(ts.bad_index("count_reached_9"), Some(0));
    }

    #[test]
    fn simulate_counter() {
        let mut p = ExprPool::new();
        let (ts, en, c) = counter(&mut p);
        let mut sim = Simulator::new(&ts, &p);
        assert_eq!(sim.state(c), Bv::new(4, 0));
        for _ in 0..20 {
            sim.step_with(&ts, &p, &[(en, Bv::from_bool(true))]);
        }
        // 4-bit counter wraps at 16.
        assert_eq!(sim.state(c), Bv::new(4, 4));
    }
}
