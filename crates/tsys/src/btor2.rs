//! BTOR2 export: serializes a [`TransitionSystem`] into the BTOR2 word-
//! level model-checking format, so designs (and composed A-QED monitors)
//! can be cross-checked with external checkers such as BtorMC or
//! AVR/Pono.
//!
//! Only the operators the expression IR produces are emitted; the writer
//! is total over well-formed systems. A tiny structural reader is
//! provided for round-trip testing of the writer's output (it is not a
//! general BTOR2 front-end).

use crate::TransitionSystem;
use aqed_expr::{BinOp, ExprPool, ExprRef, Node, UnOp};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Serializes the system to BTOR2 text.
///
/// Every sort, input, state, init, next, constraint, bad and output node
/// is given a line id; the result is accepted by standard BTOR2 parsers.
///
/// # Panics
///
/// Panics if the system fails [`TransitionSystem::validate`].
#[must_use]
pub fn to_btor2(ts: &TransitionSystem, pool: &ExprPool) -> String {
    ts.validate(pool).expect("system must be well-formed");
    let mut out = String::new();
    let mut next_id = 1usize;
    let mut sorts: HashMap<u32, usize> = HashMap::new();
    let mut nodes: HashMap<ExprRef, usize> = HashMap::new();
    let mut vars: HashMap<aqed_expr::VarId, usize> = HashMap::new();

    let _ = writeln!(out, "; BTOR2 export of '{}'", ts.name());

    let mut sort_of = |w: u32, out: &mut String, next_id: &mut usize| -> usize {
        if let Some(&id) = sorts.get(&w) {
            return id;
        }
        let id = *next_id;
        *next_id += 1;
        let _ = writeln!(out, "{id} sort bitvec {w}");
        sorts.insert(w, id);
        id
    };

    // Declare inputs and states.
    for &iv in ts.inputs() {
        let s = sort_of(pool.var_width(iv), &mut out, &mut next_id);
        let id = next_id;
        next_id += 1;
        let _ = writeln!(out, "{id} input {s} {}", sanitize(pool.var_name(iv)));
        vars.insert(iv, id);
    }
    for st in ts.states() {
        let s = sort_of(pool.var_width(st.var), &mut out, &mut next_id);
        let id = next_id;
        next_id += 1;
        let _ = writeln!(out, "{id} state {s} {}", sanitize(pool.var_name(st.var)));
        vars.insert(st.var, id);
    }

    // Emit an expression DAG node, memoized.
    fn emit(
        e: ExprRef,
        pool: &ExprPool,
        out: &mut String,
        next_id: &mut usize,
        sorts: &mut HashMap<u32, usize>,
        nodes: &mut HashMap<ExprRef, usize>,
        vars: &HashMap<aqed_expr::VarId, usize>,
    ) -> usize {
        if let Some(&id) = nodes.get(&e) {
            return id;
        }
        // Iterative post-order.
        let mut stack = vec![e];
        while let Some(&cur) = stack.last() {
            if nodes.contains_key(&cur) {
                stack.pop();
                continue;
            }
            let mut pending = false;
            let need = |c: ExprRef, stack: &mut Vec<ExprRef>, pending: &mut bool| {
                if !nodes.contains_key(&c) {
                    stack.push(c);
                    *pending = true;
                }
            };
            match *pool.node(cur) {
                Node::Const(_) | Node::Var(_) => {}
                Node::Unary(_, a) => need(a, &mut stack, &mut pending),
                Node::Binary(_, a, b) => {
                    need(a, &mut stack, &mut pending);
                    need(b, &mut stack, &mut pending);
                }
                Node::Ite { cond, then_, else_ } => {
                    need(cond, &mut stack, &mut pending);
                    need(then_, &mut stack, &mut pending);
                    need(else_, &mut stack, &mut pending);
                }
                Node::Extract { arg, .. } | Node::Extend { arg, .. } => {
                    need(arg, &mut stack, &mut pending);
                }
            }
            if pending {
                continue;
            }
            let w = pool.width(cur);
            let sid = match sorts.get(&w) {
                Some(&s) => s,
                None => {
                    let id = *next_id;
                    *next_id += 1;
                    let _ = writeln!(out, "{id} sort bitvec {w}");
                    sorts.insert(w, id);
                    id
                }
            };
            let id = *next_id;
            *next_id += 1;
            match *pool.node(cur) {
                Node::Const(v) => {
                    let _ = writeln!(out, "{id} constd {sid} {}", v.to_u64());
                }
                Node::Var(v) => {
                    // Var lines were pre-declared; alias through a no-op
                    // is unnecessary: reuse the declared id and give the
                    // freshly allocated one back.
                    *next_id -= 1;
                    nodes.insert(cur, vars[&v]);
                    stack.pop();
                    continue;
                }
                Node::Unary(op, a) => {
                    let an = nodes[&a];
                    let name = match op {
                        UnOp::Not => "not",
                        UnOp::Neg => "neg",
                        UnOp::RedOr => "redor",
                        UnOp::RedAnd => "redand",
                        UnOp::RedXor => "redxor",
                    };
                    let _ = writeln!(out, "{id} {name} {sid} {an}");
                }
                Node::Binary(op, a, b) => {
                    let an = nodes[&a];
                    let bn = nodes[&b];
                    let name = match op {
                        BinOp::And => "and",
                        BinOp::Or => "or",
                        BinOp::Xor => "xor",
                        BinOp::Add => "add",
                        BinOp::Sub => "sub",
                        BinOp::Mul => "mul",
                        BinOp::Udiv => "udiv",
                        BinOp::Urem => "urem",
                        BinOp::Shl => "sll",
                        BinOp::Lshr => "srl",
                        BinOp::Ashr => "sra",
                        BinOp::Eq => "eq",
                        BinOp::Ult => "ult",
                        BinOp::Ule => "ulte",
                        BinOp::Slt => "slt",
                        BinOp::Sle => "slte",
                        BinOp::Concat => "concat",
                    };
                    let _ = writeln!(out, "{id} {name} {sid} {an} {bn}");
                }
                Node::Ite { cond, then_, else_ } => {
                    let cn = nodes[&cond];
                    let tn = nodes[&then_];
                    let en = nodes[&else_];
                    let _ = writeln!(out, "{id} ite {sid} {cn} {tn} {en}");
                }
                Node::Extract { hi, lo, arg } => {
                    let an = nodes[&arg];
                    let _ = writeln!(out, "{id} slice {sid} {an} {hi} {lo}");
                }
                Node::Extend { signed, width, arg } => {
                    let an = nodes[&arg];
                    let ext = width - pool.width(arg);
                    let name = if signed { "sext" } else { "uext" };
                    let _ = writeln!(out, "{id} {name} {sid} {an} {ext}");
                }
            }
            nodes.insert(cur, id);
            stack.pop();
        }
        nodes[&e]
    }

    // Inits and nexts.
    for st in ts.states() {
        let w = pool.var_width(st.var);
        if let Some(init) = st.init {
            let en = emit(
                init,
                pool,
                &mut out,
                &mut next_id,
                &mut sorts,
                &mut nodes,
                &vars,
            );
            let sid = sorts[&w];
            let id = next_id;
            next_id += 1;
            let _ = writeln!(out, "{id} init {sid} {} {en}", vars[&st.var]);
        }
        let next = st.next.expect("validated");
        let en = emit(
            next,
            pool,
            &mut out,
            &mut next_id,
            &mut sorts,
            &mut nodes,
            &vars,
        );
        let sid = sorts[&w];
        let id = next_id;
        next_id += 1;
        let _ = writeln!(out, "{id} next {sid} {} {en}", vars[&st.var]);
    }
    for &c in ts.constraints() {
        let en = emit(
            c,
            pool,
            &mut out,
            &mut next_id,
            &mut sorts,
            &mut nodes,
            &vars,
        );
        let id = next_id;
        next_id += 1;
        let _ = writeln!(out, "{id} constraint {en}");
    }
    for (name, b) in ts.bads() {
        let en = emit(
            *b,
            pool,
            &mut out,
            &mut next_id,
            &mut sorts,
            &mut nodes,
            &vars,
        );
        let id = next_id;
        next_id += 1;
        let _ = writeln!(out, "{id} bad {en} {}", sanitize(name));
    }
    for (name, o) in ts.outputs() {
        let en = emit(
            *o,
            pool,
            &mut out,
            &mut next_id,
            &mut sorts,
            &mut nodes,
            &vars,
        );
        let id = next_id;
        next_id += 1;
        let _ = writeln!(out, "{id} output {en} {}", sanitize(name));
    }
    out
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Line-count statistics of a BTOR2 dump, used by tests and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Btor2Stats {
    /// `sort` lines.
    pub sorts: usize,
    /// `input` lines.
    pub inputs: usize,
    /// `state` lines.
    pub states: usize,
    /// `next` lines.
    pub nexts: usize,
    /// `init` lines.
    pub inits: usize,
    /// `bad` lines.
    pub bads: usize,
    /// `constraint` lines.
    pub constraints: usize,
    /// `output` lines.
    pub outputs: usize,
    /// All other (operator) lines.
    pub ops: usize,
}

/// Parses the structural statistics out of BTOR2 text (round-trip checks
/// for [`to_btor2`]; not a general parser).
#[must_use]
pub fn btor2_stats(text: &str) -> Btor2Stats {
    let mut s = Btor2Stats::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let mut tok = line.split_ascii_whitespace();
        let _id = tok.next();
        match tok.next() {
            Some("sort") => s.sorts += 1,
            Some("input") => s.inputs += 1,
            Some("state") => s.states += 1,
            Some("next") => s.nexts += 1,
            Some("init") => s.inits += 1,
            Some("bad") => s.bads += 1,
            Some("constraint") => s.constraints += 1,
            Some("output") => s.outputs += 1,
            Some(_) => s.ops += 1,
            None => {}
        }
    }
    s
}

/// Checks BTOR2 text for referential integrity: every operand id must
/// have been defined on an earlier line. Returns the number of
/// well-formed lines.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn btor2_check(text: &str) -> Result<usize, String> {
    let mut defined: Vec<usize> = Vec::new();
    let mut count = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let toks: Vec<&str> = line.split_ascii_whitespace().collect();
        let id: usize = toks[0]
            .parse()
            .map_err(|_| format!("line {}: bad id '{}'", lineno + 1, toks[0]))?;
        let kind = toks[1];
        // Operand positions depend on the kind; ids are always numeric
        // tokens after the sort reference (skip symbolic names/targets).
        let operand_start = match kind {
            "sort" | "input" | "state" => toks.len(), // no operand refs
            "constd" => toks.len(),                   // value literal, not a ref
            "bad" | "constraint" | "output" => 2,
            "init" | "next" => 2, // sort, state, expr — all refs
            "slice" => 3,         // sort, arg (hi/lo are literals)
            "uext" | "sext" => 3, // sort, arg (ext amount literal)
            _ => 2,               // sort + operand refs
        };
        let operand_end = match kind {
            "slice" => 4,
            "uext" | "sext" => 4,
            "bad" | "constraint" | "output" => 3,
            _ => toks.len(),
        };
        for t in toks
            .iter()
            .take(operand_end.min(toks.len()))
            .skip(operand_start.min(toks.len()))
        {
            if let Ok(op) = t.parse::<usize>() {
                if !defined.contains(&op) {
                    return Err(format!(
                        "line {}: operand {op} used before definition",
                        lineno + 1
                    ));
                }
            }
        }
        defined.push(id);
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransitionSystem;
    use aqed_expr::ExprPool;

    fn sample_system(pool: &mut ExprPool) -> TransitionSystem {
        let mut ts = TransitionSystem::new("sample");
        let en = ts.add_input(pool, "en", 1);
        let c = ts.add_register(pool, "count", 8, 0);
        let ce = pool.var_expr(c);
        let one = pool.lit(8, 1);
        let inc = pool.add(ce, one);
        let ene = pool.var_expr(en);
        let next = pool.ite(ene, inc, ce);
        ts.set_next(c, next);
        let lim = pool.lit(8, 200);
        let hit = pool.uge(ce, lim);
        ts.add_bad("count_reaches_200", hit);
        ts.add_output("count", ce);
        let nonzero = pool.redor(ce);
        ts.add_constraint({
            let t = pool.true_();
            let _ = nonzero;
            t
        });
        ts
    }

    #[test]
    fn exports_structurally_complete_btor2() {
        let mut p = ExprPool::new();
        let ts = sample_system(&mut p);
        let text = to_btor2(&ts, &p);
        let stats = btor2_stats(&text);
        assert_eq!(stats.inputs, 1);
        assert_eq!(stats.states, 1);
        assert_eq!(stats.nexts, 1);
        assert_eq!(stats.inits, 1);
        assert_eq!(stats.bads, 1);
        assert_eq!(stats.outputs, 1);
        assert_eq!(stats.constraints, 1);
        assert!(stats.ops >= 3, "operator nodes present");
        assert!(text.contains("sort bitvec 8"));
        assert!(text.contains("count_reaches_200"));
    }

    #[test]
    fn export_has_referential_integrity() {
        let mut p = ExprPool::new();
        let ts = sample_system(&mut p);
        let text = to_btor2(&ts, &p);
        let lines = btor2_check(&text).expect("well-formed");
        assert!(lines > 8);
    }

    #[test]
    fn exports_every_operator_class() {
        let mut p = ExprPool::new();
        let mut ts = TransitionSystem::new("ops");
        let a = ts.add_input(&mut p, "a", 8);
        let b = ts.add_input(&mut p, "b", 8);
        let s = ts.add_register(&mut p, "s", 8, 5);
        let ae = p.var_expr(a);
        let be = p.var_expr(b);
        let se = p.var_expr(s);
        // A next function touching many operators.
        let sum = p.add(ae, be);
        let prod = p.mul(sum, se);
        let sh = p.lshr(prod, ae);
        let cmp = p.slt(sh, be);
        let ext = p.sext(cmp, 4);
        let sl = p.extract(ext, 2, 0);
        let z = p.zext(sl, 8);
        let x = p.xor(z, ae);
        let n = p.neg(x);
        ts.set_next(s, n);
        let red = p.redxor(se);
        ts.add_bad("parity", red);
        let text = to_btor2(&ts, &p);
        for op in [
            "add", "mul", "srl", "slt", "sext", "slice", "uext", "xor", "neg", "redxor",
        ] {
            assert!(text.contains(&format!(" {op} ")), "missing {op}\n{text}");
        }
        btor2_check(&text).expect("well-formed");
    }

    #[test]
    fn check_rejects_dangling_reference() {
        let bad = "1 sort bitvec 1\n2 and 1 1 99\n";
        assert!(btor2_check(bad).is_err());
    }

    #[test]
    fn sanitizes_symbol_names() {
        let mut p = ExprPool::new();
        let mut ts = TransitionSystem::new("weird");
        let s = ts.add_register(&mut p, "mem[3]", 4, 0);
        let se = p.var_expr(s);
        ts.set_next(s, se);
        let z = p.lit(4, 0);
        let hit = p.eq(se, z);
        ts.add_bad("b", hit);
        let text = to_btor2(&ts, &p);
        assert!(text.contains("mem_3_"));
        assert!(!text.contains("mem[3]"));
    }
}
