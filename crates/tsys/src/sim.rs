//! Concrete cycle-accurate simulation of transition systems.

use crate::{Trace, TransitionSystem};
use aqed_bitvec::Bv;
use aqed_expr::{ExprPool, ExprRef, VarId};
use std::collections::HashMap;

/// Everything observed in one simulated cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepRecord {
    /// Cycle number (0-based).
    pub cycle: usize,
    /// Values of the named outputs, in declaration order.
    pub outputs: Vec<(String, Bv)>,
    /// Indices (into [`TransitionSystem::bads`]) of properties violated
    /// this cycle.
    pub violated_bads: Vec<usize>,
    /// Whether all environment constraints held this cycle. Cycles that
    /// break constraints are outside the verified input space; the
    /// simulator reports rather than forbids them.
    pub constraints_ok: bool,
}

impl StepRecord {
    /// Looks up an output value by name.
    #[must_use]
    pub fn output(&self, name: &str) -> Option<Bv> {
        self.outputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

/// Cycle-accurate interpreter for a [`TransitionSystem`].
///
/// Registers with no init expression start at zero (use
/// [`Simulator::with_state`] to model arbitrary power-on values).
///
/// # Examples
///
/// See the [crate-level documentation](crate).
#[derive(Debug, Clone)]
pub struct Simulator {
    state: HashMap<VarId, Bv>,
    cycle: usize,
}

impl Simulator {
    /// Creates a simulator positioned at cycle 0 in the initial state.
    ///
    /// # Panics
    ///
    /// Panics if an init expression references an input variable.
    #[must_use]
    pub fn new(ts: &TransitionSystem, pool: &ExprPool) -> Self {
        let mut state = HashMap::new();
        // Two passes: inits may reference other states' initial values.
        for s in ts.states() {
            if s.init.is_none() {
                state.insert(s.var, Bv::zero(pool.var_width(s.var)));
            }
        }
        // Constant-ish inits first, then expression inits reading them.
        let mut pending: Vec<(VarId, ExprRef)> = ts
            .states()
            .iter()
            .filter_map(|s| s.init.map(|i| (s.var, i)))
            .collect();
        // Resolve in dependency-friendly order: repeat until fixpoint.
        let mut progress = true;
        while progress && !pending.is_empty() {
            progress = false;
            pending.retain(|&(var, init)| {
                let deps = pool.support(init);
                if deps.iter().all(|d| state.contains_key(d)) {
                    let v = pool.eval(init, &mut |d| state[&d]);
                    state.insert(var, v);
                    progress = true;
                    false
                } else {
                    true
                }
            });
        }
        assert!(
            pending.is_empty(),
            "cyclic or input-dependent init expressions in '{}'",
            ts.name()
        );
        Simulator { state, cycle: 0 }
    }

    /// Creates a simulator with explicit initial values overriding (or
    /// complementing) the declared inits — used to replay BMC
    /// counterexamples whose uninitialised registers got concrete values.
    #[must_use]
    pub fn with_state(
        ts: &TransitionSystem,
        pool: &ExprPool,
        overrides: &HashMap<VarId, Bv>,
    ) -> Self {
        let mut sim = Self::new(ts, pool);
        for (&v, &val) in overrides {
            assert!(ts.is_state(v), "override for non-state variable");
            sim.state.insert(v, val);
        }
        sim
    }

    /// The current cycle number (number of [`Simulator::step_with`]
    /// calls so far).
    #[must_use]
    pub fn cycle(&self) -> usize {
        self.cycle
    }

    /// The current value of state variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a state of the simulated system.
    #[must_use]
    pub fn state(&self, v: VarId) -> Bv {
        self.state[&v]
    }

    /// Evaluates an arbitrary expression against the current state and the
    /// given input values (useful for peeking at internal signals).
    ///
    /// # Panics
    ///
    /// Panics if the expression references an input not present in
    /// `inputs`.
    #[must_use]
    pub fn peek(&self, pool: &ExprPool, e: ExprRef, inputs: &[(VarId, Bv)]) -> Bv {
        let imap: HashMap<VarId, Bv> = inputs.iter().copied().collect();
        pool.eval(e, &mut |v| {
            self.state.get(&v).copied().unwrap_or_else(|| {
                *imap
                    .get(&v)
                    .unwrap_or_else(|| panic!("no value for variable '{}'", pool.var_name(v)))
            })
        })
    }

    /// Advances one clock cycle against `ts` (must be the system the
    /// simulator was created from). Returns observations of this cycle.
    ///
    /// # Panics
    ///
    /// Panics if an expression references an input missing from `inputs`.
    pub fn step_with(
        &mut self,
        ts: &TransitionSystem,
        pool: &ExprPool,
        inputs: &[(VarId, Bv)],
    ) -> StepRecord {
        let imap: HashMap<VarId, Bv> = inputs.iter().copied().collect();
        let lookup = |state: &HashMap<VarId, Bv>, v: VarId| -> Bv {
            if let Some(&val) = state.get(&v) {
                val
            } else {
                *imap
                    .get(&v)
                    .unwrap_or_else(|| panic!("no value for input '{}'", pool.var_name(v)))
            }
        };

        // Observe outputs / constraints / bads in the current cycle.
        let mut roots: Vec<ExprRef> = Vec::new();
        roots.extend(ts.outputs().iter().map(|&(_, e)| e));
        roots.extend(ts.constraints().iter().copied());
        roots.extend(ts.bads().iter().map(|&(_, e)| e));
        let state_snapshot = self.state.clone();
        let values = pool.eval_all(&roots, &mut |v| lookup(&state_snapshot, v));
        let n_out = ts.outputs().len();
        let n_con = ts.constraints().len();
        let outputs: Vec<(String, Bv)> = ts
            .outputs()
            .iter()
            .zip(&values[..n_out])
            .map(|((name, _), &v)| (name.clone(), v))
            .collect();
        let constraints_ok = values[n_out..n_out + n_con].iter().all(|v| v.is_true());
        let violated_bads: Vec<usize> = values[n_out + n_con..]
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_true())
            .map(|(i, _)| i)
            .collect();

        // Clock edge: compute all next values from the *old* state.
        let next_roots: Vec<ExprRef> = ts
            .states()
            .iter()
            .map(|s| s.next.expect("validated system"))
            .collect();
        let next_values = pool.eval_all(&next_roots, &mut |v| lookup(&state_snapshot, v));
        for (s, v) in ts.states().iter().zip(next_values) {
            self.state.insert(s.var, v);
        }

        let rec = StepRecord {
            cycle: self.cycle,
            outputs,
            violated_bads,
            constraints_ok,
        };
        self.cycle += 1;
        rec
    }

    /// Runs a whole input trace, returning one record per cycle.
    pub fn run(
        &mut self,
        ts: &TransitionSystem,
        pool: &ExprPool,
        trace: &Trace,
    ) -> Vec<StepRecord> {
        (0..trace.len())
            .map(|k| {
                let inputs: Vec<(VarId, Bv)> = trace.frame(k).to_vec();
                self.step_with(ts, pool, &inputs)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransitionSystem;

    /// Two-register system: a counter and a shadow register delayed by one
    /// cycle, with a bad tracking "shadow == 3".
    fn system(pool: &mut ExprPool) -> (TransitionSystem, VarId) {
        let mut ts = TransitionSystem::new("pair");
        let en = ts.add_input(pool, "en", 1);
        let c = ts.add_register(pool, "c", 4, 0);
        let sh = ts.add_register(pool, "sh", 4, 0);
        let ce = pool.var_expr(c);
        let ene = pool.var_expr(en);
        let one = pool.lit(4, 1);
        let inc = pool.add(ce, one);
        let cn = pool.ite(ene, inc, ce);
        ts.set_next(c, cn);
        ts.set_next(sh, ce);
        let she = pool.var_expr(sh);
        ts.add_output("shadow", she);
        ts.add_output("count", ce);
        let three = pool.lit(4, 3);
        let hit = pool.eq(she, three);
        ts.add_bad("shadow_is_3", hit);
        let en_bit = pool.var_expr(en);
        ts.add_constraint(en_bit); // environment always asserts enable
        (ts, en)
    }

    #[test]
    fn observes_before_clock_edge() {
        let mut p = ExprPool::new();
        let (ts, en) = system(&mut p);
        ts.validate(&p).expect("valid");
        let mut sim = Simulator::new(&ts, &p);
        let t = Bv::from_bool(true);
        let r0 = sim.step_with(&ts, &p, &[(en, t)]);
        assert_eq!(r0.output("count"), Some(Bv::new(4, 0)));
        assert_eq!(r0.output("shadow"), Some(Bv::new(4, 0)));
        assert!(r0.constraints_ok);
        assert!(r0.violated_bads.is_empty());
        let r1 = sim.step_with(&ts, &p, &[(en, t)]);
        assert_eq!(r1.output("count"), Some(Bv::new(4, 1)));
        assert_eq!(r1.output("shadow"), Some(Bv::new(4, 0)));
    }

    #[test]
    fn bad_fires_at_right_cycle() {
        let mut p = ExprPool::new();
        let (ts, en) = system(&mut p);
        let mut sim = Simulator::new(&ts, &p);
        let t = Bv::from_bool(true);
        let mut fired_at = None;
        for k in 0..10 {
            let r = sim.step_with(&ts, &p, &[(en, t)]);
            if !r.violated_bads.is_empty() {
                fired_at = Some(k);
                break;
            }
        }
        // shadow == 3 when count was 3 last cycle: cycles 0..: count=k,
        // shadow=k-1 → shadow==3 at cycle 4.
        assert_eq!(fired_at, Some(4));
    }

    #[test]
    fn constraint_violation_reported() {
        let mut p = ExprPool::new();
        let (ts, en) = system(&mut p);
        let mut sim = Simulator::new(&ts, &p);
        let r = sim.step_with(&ts, &p, &[(en, Bv::from_bool(false))]);
        assert!(!r.constraints_ok);
    }

    #[test]
    fn with_state_overrides() {
        let mut p = ExprPool::new();
        let (ts, en) = system(&mut p);
        let c = ts.states()[0].var;
        let overrides = HashMap::from([(c, Bv::new(4, 9))]);
        let mut sim = Simulator::with_state(&ts, &p, &overrides);
        assert_eq!(sim.state(c), Bv::new(4, 9));
        sim.step_with(&ts, &p, &[(en, Bv::from_bool(true))]);
        assert_eq!(sim.state(c), Bv::new(4, 10));
    }

    #[test]
    fn peek_reads_internal_expression() {
        let mut p = ExprPool::new();
        let (ts, en) = system(&mut p);
        let c = ts.states()[0].var;
        let ce = p.var_expr(c);
        let sq = p.mul(ce, ce);
        let sim = Simulator::new(&ts, &p);
        let v = sim.peek(&p, sq, &[(en, Bv::from_bool(true))]);
        assert_eq!(v, Bv::new(4, 0));
    }

    #[test]
    fn run_replays_trace() {
        let mut p = ExprPool::new();
        let (ts, en) = system(&mut p);
        let mut trace = Trace::new();
        for _ in 0..6 {
            trace.push_frame(vec![(en, Bv::from_bool(true))]);
        }
        let mut sim = Simulator::new(&ts, &p);
        let recs = sim.run(&ts, &p, &trace);
        assert_eq!(recs.len(), 6);
        assert_eq!(recs[5].output("count"), Some(Bv::new(4, 5)));
        assert_eq!(recs[4].violated_bads, vec![0]);
    }
}
