//! Small memories modelled as banks of registers.
//!
//! The expression IR deliberately has no array theory: a memory of `N`
//! words is `N` registers with a mux-tree read port and a demux write
//! port. This keeps bit-blasting simple and is faithful to how small
//! accelerator-local SRAMs and FIFOs are synthesized.

use crate::TransitionSystem;
use aqed_expr::{ExprPool, ExprRef, VarId};

/// A register-bank memory attached to a [`TransitionSystem`].
///
/// Create with [`Mem::new`], read combinationally with [`Mem::read`], and
/// derive the registers' next-state expressions for a synchronous write
/// port with [`Mem::write_port`].
///
/// # Examples
///
/// ```
/// use aqed_tsys::{Mem, Simulator, TransitionSystem};
/// use aqed_expr::ExprPool;
/// use aqed_bitvec::Bv;
///
/// let mut p = ExprPool::new();
/// let mut ts = TransitionSystem::new("ram");
/// let we = ts.add_input(&mut p, "we", 1);
/// let addr = ts.add_input(&mut p, "addr", 2);
/// let data = ts.add_input(&mut p, "data", 8);
/// let mem = Mem::new(&mut ts, &mut p, "m", 4, 8);
/// let addr_e = p.var_expr(addr);
/// let data_e = p.var_expr(data);
/// let we_e = p.var_expr(we);
/// mem.write_port(&mut ts, &mut p, we_e, addr_e, data_e);
/// let rdata = mem.read(&mut p, addr_e);
/// ts.add_output("rdata", rdata);
/// ts.validate(&p).expect("well-formed");
///
/// let mut sim = Simulator::new(&ts, &p);
/// // Write 0xAB to address 2, then read it back.
/// sim.step_with(&ts, &p, &[(we, Bv::from_bool(true)), (addr, Bv::new(2, 2)), (data, Bv::new(8, 0xAB))]);
/// let r = sim.step_with(&ts, &p, &[(we, Bv::from_bool(false)), (addr, Bv::new(2, 2)), (data, Bv::new(8, 0))]);
/// assert_eq!(r.output("rdata"), Some(Bv::new(8, 0xAB)));
/// ```
#[derive(Debug, Clone)]
pub struct Mem {
    words: Vec<VarId>,
    addr_width: u32,
    data_width: u32,
}

impl Mem {
    /// Creates a memory of `depth` words of `width` bits, all initialised
    /// to zero, registering one state variable per word on `ts`.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is 0 or does not fit a 16-bit address.
    #[must_use]
    pub fn new(
        ts: &mut TransitionSystem,
        pool: &mut ExprPool,
        name: &str,
        depth: usize,
        width: u32,
    ) -> Self {
        assert!(
            (1..=1 << 16).contains(&depth),
            "unsupported memory depth {depth}"
        );
        let words: Vec<VarId> = (0..depth)
            .map(|i| ts.add_register(pool, format!("{name}[{i}]"), width, 0))
            .collect();
        // Address width: enough bits to index every word (min 1).
        let addr_width = (usize::BITS - (depth - 1).leading_zeros()).max(1);
        Mem {
            words,
            addr_width,
            data_width: width,
        }
    }

    /// Number of words.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.words.len()
    }

    /// Word width in bits.
    #[must_use]
    pub fn data_width(&self) -> u32 {
        self.data_width
    }

    /// Minimum address width in bits.
    #[must_use]
    pub fn addr_width(&self) -> u32 {
        self.addr_width
    }

    /// The state variable backing word `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn word(&self, i: usize) -> VarId {
        self.words[i]
    }

    /// Combinational read port: the value at `addr` (out-of-range
    /// addresses read zero).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is narrower than [`Mem::addr_width`].
    #[must_use]
    pub fn read(&self, pool: &mut ExprPool, addr: ExprRef) -> ExprRef {
        assert!(
            pool.width(addr) >= self.addr_width,
            "address width {} too narrow for depth {}",
            pool.width(addr),
            self.depth()
        );
        let options: Vec<ExprRef> = self.words.iter().map(|&w| pool.var_expr(w)).collect();
        let default = pool.lit(self.data_width, 0);
        pool.select(addr, &options, default)
    }

    /// Synchronous write port: sets each word's next-state expression to
    /// `we && addr == i ? data : word[i]`. Call at most once per memory;
    /// for multiple write ports build the next expressions manually from
    /// [`Mem::word`].
    ///
    /// # Panics
    ///
    /// Panics on width mismatches.
    pub fn write_port(
        &self,
        ts: &mut TransitionSystem,
        pool: &mut ExprPool,
        we: ExprRef,
        addr: ExprRef,
        data: ExprRef,
    ) {
        assert_eq!(pool.width(we), 1, "write enable must be 1 bit");
        assert_eq!(
            pool.width(data),
            self.data_width,
            "write data width mismatch"
        );
        let aw = pool.width(addr);
        for (i, &w) in self.words.iter().enumerate() {
            let idx = pool.lit(aw, i as u64);
            let hit = pool.eq(addr, idx);
            let sel = pool.and(we, hit);
            let cur = pool.var_expr(w);
            let next = pool.ite(sel, data, cur);
            ts.set_next(w, next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use aqed_bitvec::Bv;

    fn ram(depth: usize, width: u32) -> (ExprPool, TransitionSystem, Mem, [VarId; 3]) {
        let mut p = ExprPool::new();
        let mut ts = TransitionSystem::new("ram");
        let we = ts.add_input(&mut p, "we", 1);
        let addr = ts.add_input(&mut p, "addr", 4);
        let data = ts.add_input(&mut p, "data", width);
        let mem = Mem::new(&mut ts, &mut p, "m", depth, width);
        let addr_e = p.var_expr(addr);
        let data_e = p.var_expr(data);
        let we_e = p.var_expr(we);
        mem.write_port(&mut ts, &mut p, we_e, addr_e, data_e);
        let rdata = mem.read(&mut p, addr_e);
        ts.add_output("rdata", rdata);
        ts.validate(&p).expect("well-formed");
        (p, ts, mem, [we, addr, data])
    }

    #[test]
    fn write_then_read_every_cell() {
        let (p, ts, _mem, [we, addr, data]) = ram(8, 8);
        let mut sim = Simulator::new(&ts, &p);
        for i in 0..8u64 {
            sim.step_with(
                &ts,
                &p,
                &[
                    (we, Bv::from_bool(true)),
                    (addr, Bv::new(4, i)),
                    (data, Bv::new(8, 0x10 + i)),
                ],
            );
        }
        for i in 0..8u64 {
            let r = sim.step_with(
                &ts,
                &p,
                &[
                    (we, Bv::from_bool(false)),
                    (addr, Bv::new(4, i)),
                    (data, Bv::new(8, 0)),
                ],
            );
            assert_eq!(r.output("rdata"), Some(Bv::new(8, 0x10 + i)), "cell {i}");
        }
    }

    #[test]
    fn read_during_write_returns_old_value() {
        let (p, ts, _mem, [we, addr, data]) = ram(4, 8);
        let mut sim = Simulator::new(&ts, &p);
        let r = sim.step_with(
            &ts,
            &p,
            &[
                (we, Bv::from_bool(true)),
                (addr, Bv::new(4, 1)),
                (data, Bv::new(8, 0x7F)),
            ],
        );
        // Synchronous RAM: the read sees the pre-write contents.
        assert_eq!(r.output("rdata"), Some(Bv::new(8, 0)));
    }

    #[test]
    fn out_of_range_reads_zero() {
        let (p, ts, _mem, [we, addr, data]) = ram(3, 8);
        let mut sim = Simulator::new(&ts, &p);
        let r = sim.step_with(
            &ts,
            &p,
            &[
                (we, Bv::from_bool(false)),
                (addr, Bv::new(4, 7)),
                (data, Bv::new(8, 0)),
            ],
        );
        assert_eq!(r.output("rdata"), Some(Bv::new(8, 0)));
    }

    #[test]
    fn geometry_accessors() {
        let (_, _, mem, _) = ram(5, 12);
        assert_eq!(mem.depth(), 5);
        assert_eq!(mem.data_width(), 12);
        assert_eq!(mem.addr_width(), 3);
    }

    #[test]
    fn depth_one_memory() {
        let (p, ts, mem, [we, addr, data]) = ram(1, 8);
        assert_eq!(mem.addr_width(), 1);
        let mut sim = Simulator::new(&ts, &p);
        sim.step_with(
            &ts,
            &p,
            &[
                (we, Bv::from_bool(true)),
                (addr, Bv::new(4, 0)),
                (data, Bv::new(8, 0x42)),
            ],
        );
        assert_eq!(sim.state(mem.word(0)), Bv::new(8, 0x42));
    }
}
