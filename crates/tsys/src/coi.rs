//! Cone-of-influence reduction.
//!
//! Per-obligation slicing of a [`TransitionSystem`]: given the indices of
//! the bad properties one BMC run actually checks, [`coi_slice`] keeps
//! only the inputs and registers that can influence those properties (or
//! any environment constraint) and drops everything else before the
//! system is ever unrolled. An FC obligation on a composed A-QED system
//! then never pays for the RB monitor's counters, and vice versa — the
//! word-level half of the pre-search simplification pipeline.
//!
//! The cone is the least fixpoint of variable support: it is seeded with
//! the support of every selected bad *and every constraint* (a constraint
//! over unrelated variables can still be unsatisfiable, which legitimately
//! discharges any property — dropping it would be unsound), and closed
//! under the `next`/`init` expressions of every state variable already in
//! the cone.

use crate::{StateVar, TransitionSystem};
use aqed_expr::{ExprPool, ExprRef, VarId};
use std::collections::HashSet;

/// Result of [`coi_slice`]: the reduced system plus the bookkeeping
/// needed to map a verdict on the slice back onto the original system.
#[derive(Debug, Clone)]
pub struct CoiSlice {
    /// The sliced system. Shares the original's [`ExprPool`] and
    /// `VarId`s; inputs and states appear in their original declaration
    /// order, all constraints are retained, and the bads are exactly the
    /// selected ones.
    pub system: TransitionSystem,
    /// `bad_map[i]` is the original index of the slice's bad `i`.
    pub bad_map: Vec<usize>,
    /// State variables retained in the cone.
    pub latches_kept: usize,
    /// State variables sliced away.
    pub latches_dropped: usize,
    /// Inputs retained in the cone.
    pub inputs_kept: usize,
    /// Inputs sliced away.
    pub inputs_dropped: usize,
}

/// Slices `ts` to the cone of influence of the bads at `bad_indices`
/// (plus every constraint).
///
/// Outputs are retained only when their full support lies inside the
/// cone, keeping the slice valid without growing it.
///
/// # Panics
///
/// Panics if a bad index is out of range.
#[must_use]
pub fn coi_slice(ts: &TransitionSystem, pool: &ExprPool, bad_indices: &[usize]) -> CoiSlice {
    let roots: Vec<ExprRef> = bad_indices
        .iter()
        .map(|&i| ts.bads()[i].1)
        .chain(ts.constraints().iter().copied())
        .collect();
    let mut cone: HashSet<VarId> = pool
        .support_all(roots.iter().copied())
        .into_iter()
        .collect();
    // Close under next/init of state variables already in the cone.
    let mut frontier: Vec<VarId> = cone.iter().copied().collect();
    while let Some(v) = frontier.pop() {
        let Some(s) = state_of(ts, v) else { continue };
        for root in [s.next, s.init].into_iter().flatten() {
            for d in pool.support(root) {
                if cone.insert(d) {
                    frontier.push(d);
                }
            }
        }
    }

    let mut sliced = TransitionSystem::new(format!("{}#coi", ts.name()));
    sliced.inputs = ts
        .inputs()
        .iter()
        .copied()
        .filter(|v| cone.contains(v))
        .collect();
    for s in ts.states() {
        if cone.contains(&s.var) {
            sliced.state_index.insert(s.var, sliced.states.len());
            sliced.states.push(*s);
        }
    }
    sliced.constraints = ts.constraints().to_vec();
    sliced.bads = bad_indices.iter().map(|&i| ts.bads()[i].clone()).collect();
    sliced.outputs = ts
        .outputs()
        .iter()
        .filter(|(_, e)| pool.support(*e).iter().all(|v| cone.contains(v)))
        .cloned()
        .collect();

    CoiSlice {
        latches_kept: sliced.states.len(),
        latches_dropped: ts.states().len() - sliced.states.len(),
        inputs_kept: sliced.inputs.len(),
        inputs_dropped: ts.inputs().len() - sliced.inputs.len(),
        system: sliced,
        bad_map: bad_indices.to_vec(),
    }
}

fn state_of(ts: &TransitionSystem, v: VarId) -> Option<&StateVar> {
    ts.state_index.get(&v).map(|&i| &ts.states[i])
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqed_expr::ExprPool;

    /// Two independent counters; one bad on each.
    fn two_counters(pool: &mut ExprPool) -> TransitionSystem {
        let mut ts = TransitionSystem::new("pair");
        let ena = ts.add_input(pool, "ena", 1);
        let enb = ts.add_input(pool, "enb", 1);
        let a = ts.add_register(pool, "a", 4, 0);
        let b = ts.add_register(pool, "b", 4, 0);
        for (reg, en) in [(a, ena), (b, enb)] {
            let re = pool.var_expr(reg);
            let one = pool.lit(4, 1);
            let inc = pool.add(re, one);
            let ene = pool.var_expr(en);
            let next = pool.ite(ene, inc, re);
            ts.set_next(reg, next);
        }
        let ae = pool.var_expr(a);
        let be = pool.var_expr(b);
        let five = pool.lit(4, 5);
        let a5 = pool.eq(ae, five);
        let b5 = pool.eq(be, five);
        ts.add_bad("a_reaches_5", a5);
        ts.add_bad("b_reaches_5", b5);
        ts.add_output("a_val", ae);
        ts.add_output("b_val", be);
        ts
    }

    #[test]
    fn slices_independent_halves() {
        let mut p = ExprPool::new();
        let ts = two_counters(&mut p);
        let slice = coi_slice(&ts, &p, &[1]);
        assert_eq!(slice.latches_kept, 1);
        assert_eq!(slice.latches_dropped, 1);
        assert_eq!(slice.inputs_kept, 1);
        assert_eq!(slice.inputs_dropped, 1);
        assert_eq!(slice.bad_map, vec![1]);
        assert_eq!(slice.system.bads().len(), 1);
        assert_eq!(slice.system.bads()[0].0, "b_reaches_5");
        // Only the output over the kept half survives.
        assert_eq!(slice.system.outputs().len(), 1);
        assert_eq!(slice.system.outputs()[0].0, "b_val");
        slice.system.validate(&p).expect("slice is well-formed");
    }

    #[test]
    fn all_bads_keep_everything() {
        let mut p = ExprPool::new();
        let ts = two_counters(&mut p);
        let slice = coi_slice(&ts, &p, &[0, 1]);
        assert_eq!(slice.latches_dropped, 0);
        assert_eq!(slice.inputs_dropped, 0);
        assert_eq!(slice.system.bads().len(), 2);
        slice.system.validate(&p).expect("slice is well-formed");
    }

    #[test]
    fn constraints_pull_their_support_into_the_cone() {
        let mut p = ExprPool::new();
        let mut ts = two_counters(&mut p);
        // A constraint over the a-half: even a b-only obligation must
        // keep it (and therefore the a-half it reads).
        let ena = ts.inputs()[0];
        let ene = p.var_expr(ena);
        let nen = p.not(ene);
        ts.add_constraint(nen);
        let slice = coi_slice(&ts, &p, &[1]);
        assert_eq!(slice.system.constraints().len(), 1);
        assert!(slice.system.inputs().contains(&ena));
        slice.system.validate(&p).expect("slice is well-formed");
    }

    #[test]
    fn chained_state_dependencies_are_transitive() {
        let mut p = ExprPool::new();
        let mut ts = TransitionSystem::new("chain");
        // s2 <- s1 <- s0 <- input; bad reads only s2, but the whole
        // chain must stay.
        let i = ts.add_input(&mut p, "i", 4);
        let s0 = ts.add_register(&mut p, "s0", 4, 0);
        let s1 = ts.add_register(&mut p, "s1", 4, 0);
        let s2 = ts.add_register(&mut p, "s2", 4, 0);
        let unrelated = ts.add_register(&mut p, "unrelated", 4, 0);
        let ie = p.var_expr(i);
        let s0e = p.var_expr(s0);
        let s1e = p.var_expr(s1);
        let ue = p.var_expr(unrelated);
        let one = p.lit(4, 1);
        let next_u = p.add(ue, one);
        ts.set_next(s0, ie);
        ts.set_next(s1, s0e);
        ts.set_next(s2, s1e);
        ts.set_next(unrelated, next_u);
        let s2e = p.var_expr(s2);
        let seven = p.lit(4, 7);
        let hit = p.eq(s2e, seven);
        ts.add_bad("s2_is_7", hit);
        let slice = coi_slice(&ts, &p, &[0]);
        assert_eq!(slice.latches_kept, 3);
        assert_eq!(slice.latches_dropped, 1);
        assert!(slice.system.is_state(s0));
        assert!(!slice.system.is_state(unrelated));
        slice.system.validate(&p).expect("slice is well-formed");
    }
}
