//! Cone-of-influence reduction.
//!
//! Per-obligation slicing of a [`TransitionSystem`]: given the indices of
//! the bad properties one BMC run actually checks, [`coi_slice`] keeps
//! only the inputs and registers that can influence those properties (or
//! any environment constraint) and drops everything else before the
//! system is ever unrolled. An FC obligation on a composed A-QED system
//! then never pays for the RB monitor's counters, and vice versa — the
//! word-level half of the pre-search simplification pipeline.
//!
//! The cone is the least fixpoint of variable support: it is seeded with
//! the support of every selected bad *and every constraint* (a constraint
//! over unrelated variables can still be unsatisfiable, which legitimately
//! discharges any property — dropping it would be unsound), and closed
//! under the `next`/`init` expressions of every state variable already in
//! the cone.

use crate::{StateVar, TransitionSystem};
use aqed_expr::{ExprPool, ExprRef, VarId};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Result of [`coi_slice`]: the reduced system plus the bookkeeping
/// needed to map a verdict on the slice back onto the original system.
#[derive(Debug, Clone)]
pub struct CoiSlice {
    /// The sliced system. Shares the original's [`ExprPool`] and
    /// `VarId`s; inputs and states appear in their original declaration
    /// order, all constraints are retained, and the bads are exactly the
    /// selected ones.
    pub system: TransitionSystem,
    /// `bad_map[i]` is the original index of the slice's bad `i`.
    pub bad_map: Vec<usize>,
    /// State variables retained in the cone.
    pub latches_kept: usize,
    /// State variables sliced away.
    pub latches_dropped: usize,
    /// Inputs retained in the cone.
    pub inputs_kept: usize,
    /// Inputs sliced away.
    pub inputs_dropped: usize,
}

/// Slices `ts` to the cone of influence of the bads at `bad_indices`
/// (plus every constraint).
///
/// Outputs are retained only when their full support lies inside the
/// cone, keeping the slice valid without growing it.
///
/// # Panics
///
/// Panics if a bad index is out of range.
#[must_use]
pub fn coi_slice(ts: &TransitionSystem, pool: &ExprPool, bad_indices: &[usize]) -> CoiSlice {
    coi_slice_cached(ts, pool, bad_indices, None)
}

/// [`coi_slice`] with an optional per-run [`CoiCache`]. With a cache,
/// the expensive part — the support fixpoint over the whole system —
/// runs once per `(system, bad-set)` key instead of once per BMC call;
/// only the (cheap) construction of the sliced system repeats.
///
/// # Panics
///
/// Panics if a bad index is out of range, or if `cache` was previously
/// used with a different system (see [`CoiCache`]).
#[must_use]
pub fn coi_slice_cached(
    ts: &TransitionSystem,
    pool: &ExprPool,
    bad_indices: &[usize],
    cache: Option<&CoiCache>,
) -> CoiSlice {
    let cone = match cache {
        None => Arc::new(compute_cone(ts, pool, bad_indices)),
        Some(cache) => cache.cone(ts, pool, bad_indices),
    };
    build_slice(ts, pool, bad_indices, &cone)
}

/// The least-fixpoint variable support of the selected bads plus every
/// constraint, closed under `next`/`init` of in-cone state variables.
fn compute_cone(ts: &TransitionSystem, pool: &ExprPool, bad_indices: &[usize]) -> HashSet<VarId> {
    let roots: Vec<ExprRef> = bad_indices
        .iter()
        .map(|&i| ts.bads()[i].1)
        .chain(ts.constraints().iter().copied())
        .collect();
    let mut cone: HashSet<VarId> = pool
        .support_all(roots.iter().copied())
        .into_iter()
        .collect();
    // Close under next/init of state variables already in the cone.
    let mut frontier: Vec<VarId> = cone.iter().copied().collect();
    while let Some(v) = frontier.pop() {
        let Some(s) = state_of(ts, v) else { continue };
        for root in [s.next, s.init].into_iter().flatten() {
            for d in pool.support(root) {
                if cone.insert(d) {
                    frontier.push(d);
                }
            }
        }
    }
    cone
}

fn build_slice(
    ts: &TransitionSystem,
    pool: &ExprPool,
    bad_indices: &[usize],
    cone: &HashSet<VarId>,
) -> CoiSlice {
    let mut sliced = TransitionSystem::new(format!("{}#coi", ts.name()));
    sliced.inputs = ts
        .inputs()
        .iter()
        .copied()
        .filter(|v| cone.contains(v))
        .collect();
    for s in ts.states() {
        if cone.contains(&s.var) {
            sliced.state_index.insert(s.var, sliced.states.len());
            sliced.states.push(*s);
        }
    }
    sliced.constraints = ts.constraints().to_vec();
    sliced.bads = bad_indices.iter().map(|&i| ts.bads()[i].clone()).collect();
    sliced.outputs = ts
        .outputs()
        .iter()
        .filter(|(_, e)| pool.support(*e).iter().all(|v| cone.contains(v)))
        .cloned()
        .collect();

    CoiSlice {
        latches_kept: sliced.states.len(),
        latches_dropped: ts.states().len() - sliced.states.len(),
        inputs_kept: sliced.inputs.len(),
        inputs_dropped: ts.inputs().len() - sliced.inputs.len(),
        system: sliced,
        bad_map: bad_indices.to_vec(),
    }
}

fn state_of(ts: &TransitionSystem, v: VarId) -> Option<&StateVar> {
    ts.state_index.get(&v).map(|&i| &ts.states[i])
}

/// Per-run memo for the COI support fixpoint, shared (via `Arc`) by all
/// obligations of one parallel verification run.
///
/// Two levels of reuse:
///
/// 1. A **support index** — per-bad and per-constraint variable
///    supports plus each state variable's `next`/`init` dependencies —
///    built once on first use. Every subsequent cone is a cheap BFS
///    over precomputed lists instead of a fresh expression traversal.
/// 2. A **cone memo** keyed by the sorted bad-index set, so retries and
///    repeated checks of the same obligation skip even the BFS.
///
/// # One system per cache
///
/// `VarId`s and bad indices are only meaningful relative to one
/// `(TransitionSystem, ExprPool)` pair. The cache fingerprints the
/// first system it sees and panics if later queries disagree — create
/// one cache per composed system per run, never a process-global one.
#[derive(Debug, Default)]
pub struct CoiCache {
    index: OnceLock<SupportIndex>,
    cones: Mutex<HashMap<Vec<usize>, Arc<HashSet<VarId>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Debug)]
struct SupportIndex {
    /// `(name, #inputs, #states, #bads)` of the system the cache is
    /// bound to.
    fingerprint: (String, usize, usize, usize),
    /// Support of each bad expression, by bad index.
    bads: Vec<Vec<VarId>>,
    /// Union of the supports of all constraints.
    constraints: Vec<VarId>,
    /// For each state variable, the support of its `next` and `init`.
    state_deps: HashMap<VarId, Vec<VarId>>,
}

impl SupportIndex {
    fn build(ts: &TransitionSystem, pool: &ExprPool) -> Self {
        SupportIndex {
            fingerprint: fingerprint(ts),
            bads: ts.bads().iter().map(|(_, e)| pool.support(*e)).collect(),
            constraints: pool.support_all(ts.constraints().iter().copied()),
            state_deps: ts
                .states()
                .iter()
                .map(|s| {
                    (
                        s.var,
                        pool.support_all([s.next, s.init].into_iter().flatten()),
                    )
                })
                .collect(),
        }
    }

    /// Cone BFS over the precomputed supports; equivalent to
    /// [`compute_cone`].
    fn cone(&self, bad_indices: &[usize]) -> HashSet<VarId> {
        let mut cone: HashSet<VarId> = HashSet::new();
        let mut frontier: Vec<VarId> = Vec::new();
        let seeds = bad_indices
            .iter()
            .flat_map(|&i| self.bads[i].iter())
            .chain(self.constraints.iter());
        for &v in seeds {
            if cone.insert(v) {
                frontier.push(v);
            }
        }
        while let Some(v) = frontier.pop() {
            let Some(deps) = self.state_deps.get(&v) else {
                continue;
            };
            for &d in deps {
                if cone.insert(d) {
                    frontier.push(d);
                }
            }
        }
        cone
    }
}

fn fingerprint(ts: &TransitionSystem) -> (String, usize, usize, usize) {
    (
        ts.name().to_owned(),
        ts.inputs().len(),
        ts.states().len(),
        ts.bads().len(),
    )
}

impl CoiCache {
    #[must_use]
    pub fn new() -> Self {
        CoiCache::default()
    }

    /// Cone memo lookups that were served without recomputation.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cone memo lookups that had to run the BFS.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Pre-populates the cone memo for the (sorted, deduplicated)
    /// bad-index set, e.g. from a cross-request artifact store. A later
    /// [`coi_slice_cached`] on the same set is then a pure memo hit. An
    /// already-present entry is kept; the seed must be the cone the BFS
    /// would compute for this cache's system, or slices become unsound.
    pub fn seed_cone(&self, bad_indices: &[usize], cone: HashSet<VarId>) {
        let mut key = bad_indices.to_vec();
        key.sort_unstable();
        key.dedup();
        lock_cones(&self.cones)
            .entry(key)
            .or_insert_with(|| Arc::new(cone));
    }

    /// Snapshot of every memoized cone, keyed by the sorted bad-index
    /// set — the export half of cross-request reuse.
    #[must_use]
    pub fn cones(&self) -> Vec<(Vec<usize>, Arc<HashSet<VarId>>)> {
        lock_cones(&self.cones)
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    fn cone(
        &self,
        ts: &TransitionSystem,
        pool: &ExprPool,
        bad_indices: &[usize],
    ) -> Arc<HashSet<VarId>> {
        let index = self.index.get_or_init(|| SupportIndex::build(ts, pool));
        assert_eq!(
            index.fingerprint,
            fingerprint(ts),
            "CoiCache reused across different systems"
        );
        let mut key: Vec<usize> = bad_indices.to_vec();
        key.sort_unstable();
        key.dedup();
        if let Some(cone) = lock_cones(&self.cones).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if aqed_obs::enabled() {
                aqed_obs::metrics::global().counter("coi.cache.hits").inc();
            }
            return cone.clone();
        }
        // Compute outside the lock; concurrent misses on the same key do
        // (identical) duplicate work and the last insert wins — benign.
        self.misses.fetch_add(1, Ordering::Relaxed);
        if aqed_obs::enabled() {
            aqed_obs::metrics::global()
                .counter("coi.cache.misses")
                .inc();
        }
        let cone = Arc::new(index.cone(&key));
        lock_cones(&self.cones).insert(key, cone.clone());
        cone
    }
}

fn lock_cones(
    m: &Mutex<HashMap<Vec<usize>, Arc<HashSet<VarId>>>>,
) -> std::sync::MutexGuard<'_, HashMap<Vec<usize>, Arc<HashSet<VarId>>>> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqed_expr::ExprPool;

    /// Two independent counters; one bad on each.
    fn two_counters(pool: &mut ExprPool) -> TransitionSystem {
        let mut ts = TransitionSystem::new("pair");
        let ena = ts.add_input(pool, "ena", 1);
        let enb = ts.add_input(pool, "enb", 1);
        let a = ts.add_register(pool, "a", 4, 0);
        let b = ts.add_register(pool, "b", 4, 0);
        for (reg, en) in [(a, ena), (b, enb)] {
            let re = pool.var_expr(reg);
            let one = pool.lit(4, 1);
            let inc = pool.add(re, one);
            let ene = pool.var_expr(en);
            let next = pool.ite(ene, inc, re);
            ts.set_next(reg, next);
        }
        let ae = pool.var_expr(a);
        let be = pool.var_expr(b);
        let five = pool.lit(4, 5);
        let a5 = pool.eq(ae, five);
        let b5 = pool.eq(be, five);
        ts.add_bad("a_reaches_5", a5);
        ts.add_bad("b_reaches_5", b5);
        ts.add_output("a_val", ae);
        ts.add_output("b_val", be);
        ts
    }

    #[test]
    fn slices_independent_halves() {
        let mut p = ExprPool::new();
        let ts = two_counters(&mut p);
        let slice = coi_slice(&ts, &p, &[1]);
        assert_eq!(slice.latches_kept, 1);
        assert_eq!(slice.latches_dropped, 1);
        assert_eq!(slice.inputs_kept, 1);
        assert_eq!(slice.inputs_dropped, 1);
        assert_eq!(slice.bad_map, vec![1]);
        assert_eq!(slice.system.bads().len(), 1);
        assert_eq!(slice.system.bads()[0].0, "b_reaches_5");
        // Only the output over the kept half survives.
        assert_eq!(slice.system.outputs().len(), 1);
        assert_eq!(slice.system.outputs()[0].0, "b_val");
        slice.system.validate(&p).expect("slice is well-formed");
    }

    #[test]
    fn all_bads_keep_everything() {
        let mut p = ExprPool::new();
        let ts = two_counters(&mut p);
        let slice = coi_slice(&ts, &p, &[0, 1]);
        assert_eq!(slice.latches_dropped, 0);
        assert_eq!(slice.inputs_dropped, 0);
        assert_eq!(slice.system.bads().len(), 2);
        slice.system.validate(&p).expect("slice is well-formed");
    }

    #[test]
    fn constraints_pull_their_support_into_the_cone() {
        let mut p = ExprPool::new();
        let mut ts = two_counters(&mut p);
        // A constraint over the a-half: even a b-only obligation must
        // keep it (and therefore the a-half it reads).
        let ena = ts.inputs()[0];
        let ene = p.var_expr(ena);
        let nen = p.not(ene);
        ts.add_constraint(nen);
        let slice = coi_slice(&ts, &p, &[1]);
        assert_eq!(slice.system.constraints().len(), 1);
        assert!(slice.system.inputs().contains(&ena));
        slice.system.validate(&p).expect("slice is well-formed");
    }

    #[test]
    fn cached_slices_match_uncached_and_count_hits() {
        let mut p = ExprPool::new();
        let ts = two_counters(&mut p);
        let cache = CoiCache::new();
        for &bads in &[&[0usize][..], &[1], &[0, 1]] {
            let plain = coi_slice(&ts, &p, bads);
            let cached = coi_slice_cached(&ts, &p, bads, Some(&cache));
            assert_eq!(plain.bad_map, cached.bad_map);
            assert_eq!(plain.latches_kept, cached.latches_kept);
            assert_eq!(plain.latches_dropped, cached.latches_dropped);
            assert_eq!(plain.inputs_kept, cached.inputs_kept);
            assert_eq!(plain.system.bads().len(), cached.system.bads().len());
            assert_eq!(plain.system.states().len(), cached.system.states().len());
            assert_eq!(plain.system.inputs(), cached.system.inputs());
            cached
                .system
                .validate(&p)
                .expect("cached slice is well-formed");
        }
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 0);
        // Re-slicing any seen bad-set is a pure memo hit.
        let _ = coi_slice_cached(&ts, &p, &[1], Some(&cache));
        let _ = coi_slice_cached(&ts, &p, &[0, 1], Some(&cache));
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn seeded_cones_short_circuit_the_bfs() {
        let mut p = ExprPool::new();
        let ts = two_counters(&mut p);
        // Harvest a cone from one run's cache...
        let donor = CoiCache::new();
        let _ = coi_slice_cached(&ts, &p, &[0], Some(&donor));
        let exported = donor.cones();
        assert_eq!(exported.len(), 1);
        // ...and transplant it into a fresh cache: the same query is now
        // a pure memo hit and the slice is identical to an uncached one.
        let warm = CoiCache::new();
        for (key, cone) in exported {
            warm.seed_cone(&key, cone.as_ref().clone());
        }
        let plain = coi_slice(&ts, &p, &[0]);
        let seeded = coi_slice_cached(&ts, &p, &[0], Some(&warm));
        assert_eq!(warm.hits(), 1);
        assert_eq!(warm.misses(), 0);
        assert_eq!(plain.system.inputs(), seeded.system.inputs());
        assert_eq!(plain.latches_kept, seeded.latches_kept);
        assert_eq!(plain.bad_map, seeded.bad_map);
        seeded
            .system
            .validate(&p)
            .expect("seeded slice well-formed");
    }

    #[test]
    #[should_panic(expected = "CoiCache reused across different systems")]
    fn cache_rejects_a_different_system() {
        let mut p = ExprPool::new();
        let ts = two_counters(&mut p);
        let cache = CoiCache::new();
        let _ = coi_slice_cached(&ts, &p, &[0], Some(&cache));
        let mut other = two_counters(&mut p);
        other.add_bad("extra", other.bads()[0].1);
        let _ = coi_slice_cached(&other, &p, &[0], Some(&cache));
    }

    #[test]
    fn chained_state_dependencies_are_transitive() {
        let mut p = ExprPool::new();
        let mut ts = TransitionSystem::new("chain");
        // s2 <- s1 <- s0 <- input; bad reads only s2, but the whole
        // chain must stay.
        let i = ts.add_input(&mut p, "i", 4);
        let s0 = ts.add_register(&mut p, "s0", 4, 0);
        let s1 = ts.add_register(&mut p, "s1", 4, 0);
        let s2 = ts.add_register(&mut p, "s2", 4, 0);
        let unrelated = ts.add_register(&mut p, "unrelated", 4, 0);
        let ie = p.var_expr(i);
        let s0e = p.var_expr(s0);
        let s1e = p.var_expr(s1);
        let ue = p.var_expr(unrelated);
        let one = p.lit(4, 1);
        let next_u = p.add(ue, one);
        ts.set_next(s0, ie);
        ts.set_next(s1, s0e);
        ts.set_next(s2, s1e);
        ts.set_next(unrelated, next_u);
        let s2e = p.var_expr(s2);
        let seven = p.lit(4, 7);
        let hit = p.eq(s2e, seven);
        ts.add_bad("s2_is_7", hit);
        let slice = coi_slice(&ts, &p, &[0]);
        assert_eq!(slice.latches_kept, 3);
        assert_eq!(slice.latches_dropped, 1);
        assert!(slice.system.is_state(s0));
        assert!(!slice.system.is_state(unrelated));
        slice.system.validate(&p).expect("slice is well-formed");
    }
}
