//! Property tests of the transition-system simulator: determinism,
//! composition invariance, and memory behaviour against a HashMap model.

use aqed_bitvec::Bv;
use aqed_expr::ExprPool;
use aqed_tsys::{Mem, Simulator, TransitionSystem};
use proptest::prelude::*;

// A reference model check: the register-bank memory behaves like a map.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn mem_matches_hashmap_model(ops in prop::collection::vec((any::<bool>(), 0u64..8, 0u64..256), 1..40)) {
        let mut p = ExprPool::new();
        let mut ts = TransitionSystem::new("ram");
        let we = ts.add_input(&mut p, "we", 1);
        let addr = ts.add_input(&mut p, "addr", 3);
        let data = ts.add_input(&mut p, "data", 8);
        let mem = Mem::new(&mut ts, &mut p, "m", 8, 8);
        let addr_e = p.var_expr(addr);
        let data_e = p.var_expr(data);
        let we_e = p.var_expr(we);
        mem.write_port(&mut ts, &mut p, we_e, addr_e, data_e);
        let rdata = mem.read(&mut p, addr_e);
        ts.add_output("rdata", rdata);
        ts.validate(&p).expect("valid");

        let mut sim = Simulator::new(&ts, &p);
        let mut model = [0u64; 8];
        for (w, a, d) in ops {
            let inputs = [
                (we, Bv::from_bool(w)),
                (addr, Bv::new(3, a)),
                (data, Bv::new(8, d)),
            ];
            let rec = sim.step_with(&ts, &p, &inputs);
            // Synchronous read: pre-write contents.
            prop_assert_eq!(rec.output("rdata"), Some(Bv::new(8, model[a as usize])));
            if w {
                model[a as usize] = d;
            }
        }
    }

    #[test]
    fn simulation_is_deterministic(seq in prop::collection::vec((any::<bool>(), 0u64..16), 1..30)) {
        let build = |p: &mut ExprPool| {
            let mut ts = TransitionSystem::new("lfsr");
            let en = ts.add_input(p, "en", 1);
            let din = ts.add_input(p, "din", 4);
            let s = ts.add_register(p, "s", 4, 1);
            let se = p.var_expr(s);
            let dine = p.var_expr(din);
            let x = p.xor(se, dine);
            let one = p.lit(4, 1);
            let rot = {
                let hi = p.extract(x, 3, 1);
                let lo = p.extract(x, 0, 0);
                p.concat(lo, hi)
            };
            let nx = p.add(rot, one);
            let ene = p.var_expr(en);
            let next = p.ite(ene, nx, se);
            ts.set_next(s, next);
            ts.add_output("s", se);
            (ts, en, din, s)
        };
        let mut p1 = ExprPool::new();
        let (ts1, en1, din1, s1) = build(&mut p1);
        let mut p2 = ExprPool::new();
        let (ts2, en2, din2, s2) = build(&mut p2);
        let mut sim1 = Simulator::new(&ts1, &p1);
        let mut sim2 = Simulator::new(&ts2, &p2);
        for &(e, d) in &seq {
            sim1.step_with(&ts1, &p1, &[(en1, Bv::from_bool(e)), (din1, Bv::new(4, d))]);
            sim2.step_with(&ts2, &p2, &[(en2, Bv::from_bool(e)), (din2, Bv::new(4, d))]);
            prop_assert_eq!(sim1.state(s1), sim2.state(s2));
        }
    }

    #[test]
    fn compose_preserves_component_behaviour(seq in prop::collection::vec(0u64..16, 1..25)) {
        // A counter simulated alone must behave identically after a
        // monitor system is composed alongside it.
        let build_counter = |p: &mut ExprPool, ts: &mut TransitionSystem| {
            let d = ts.add_input(p, "d", 4);
            let c = ts.add_register(p, "c", 4, 0);
            let ce = p.var_expr(c);
            let de = p.var_expr(d);
            let next = p.add(ce, de);
            ts.set_next(c, next);
            (d, c)
        };
        let mut p1 = ExprPool::new();
        let mut alone = TransitionSystem::new("alone");
        let (d1, c1) = build_counter(&mut p1, &mut alone);
        alone.validate(&p1).expect("valid");

        let mut p2 = ExprPool::new();
        let mut host = TransitionSystem::new("host");
        let (d2, c2) = build_counter(&mut p2, &mut host);
        let mut monitor = TransitionSystem::new("mon");
        let seen = monitor.add_register(&mut p2, "seen", 1, 0);
        let c2e = p2.var_expr(c2);
        let lim = p2.lit(4, 9);
        let hit = p2.uge(c2e, lim);
        let seen_e = p2.var_expr(seen);
        let nx = p2.or(seen_e, hit);
        monitor.set_next(seen, nx);
        monitor.add_bad("hits9", hit);
        host.compose(&monitor);
        host.validate(&p2).expect("composed valid");

        let mut s1 = Simulator::new(&alone, &p1);
        let mut s2 = Simulator::new(&host, &p2);
        for &d in &seq {
            s1.step_with(&alone, &p1, &[(d1, Bv::new(4, d))]);
            s2.step_with(&host, &p2, &[(d2, Bv::new(4, d))]);
            prop_assert_eq!(s1.state(c1), s2.state(c2), "composition must not alter the design");
        }
    }
}
