//! End-to-end tests of the daemon: identity with direct engine runs,
//! concurrency, cancellation, back-pressure and graceful drain.

use aqed_engine::{Engine, VerifyRequest};
use aqed_obs::json::Json;
use aqed_serve::{
    ping, query_health, request_shutdown, submit, submit_retrying, submit_with, verdict_line,
    ServeOptions, Server,
};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

fn options(workers: usize, queue: usize) -> ServeOptions {
    ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_capacity: queue,
        ..ServeOptions::default()
    }
}

/// A fresh per-test store directory under the system temp dir.
fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aqed-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The verdict up to the timing parenthetical — stable across runs.
fn stem(verdict: &str) -> &str {
    verdict.split(" (").next().unwrap_or(verdict)
}

/// A slow-but-bounded request: healthy AES at bound 8 needs >100k
/// conflicts, far longer than any test step here, while the timeout
/// keeps a logic bug from hanging the suite.
fn slow_request() -> VerifyRequest {
    let mut req = VerifyRequest::new("aes_v1");
    req.healthy = true;
    req.bound = Some(8);
    req.timeout = Some(Duration::from_secs(120));
    req
}

#[test]
fn served_verdicts_match_direct_engine_runs() {
    let server = Server::start(&options(2, 8)).expect("bind");
    let addr = server.addr();
    assert!(ping(addr));
    let engine = Engine::new();
    for (case, healthy, bound) in [
        ("dataflow_fifo_sizing", true, Some(6)),
        ("dataflow_fifo_sizing", false, None),
        ("motivating_clock_enable", false, None),
    ] {
        let mut req = VerifyRequest::new(case);
        req.healthy = healthy;
        req.bound = bound;
        req.jobs = 2;
        let direct = engine.verify(&req).expect("direct run");
        let served = submit(addr, &req).expect("served run");
        assert!(!served.rejected);
        assert_eq!(
            served.exit_code,
            direct.exit_code(),
            "exit codes must agree for {case} (served: {})",
            served.verdict
        );
        assert_eq!(
            stem(&served.verdict),
            stem(&verdict_line(&direct.report)),
            "verdicts must agree for {case}"
        );
        // The report rides along and matches the verdict.
        let report = served.report.expect("report JSON");
        assert!(report.get("outcome").is_some(), "{report}");
    }
    server.begin_shutdown();
    server.join();
}

#[test]
fn concurrent_submissions_agree_and_later_runs_hit_the_cache() {
    let server = Server::start(&options(4, 16)).expect("bind");
    let addr = server.addr();
    let mut req = VerifyRequest::new("dataflow_fifo_sizing");
    req.healthy = true;
    req.bound = Some(6);
    let baseline = Engine::new().verify(&req).expect("cache-off baseline");
    let outcomes: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let req = req.clone();
                s.spawn(move || submit(addr, &req).expect("served run"))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    for outcome in &outcomes {
        assert_eq!(outcome.exit_code, baseline.exit_code());
        assert_eq!(
            stem(&outcome.verdict),
            stem(&verdict_line(&baseline.report))
        );
    }
    // The store is warm now: a repeat request is served from cached
    // verdicts without touching the solver.
    let warm = submit(addr, &req).expect("warm run");
    assert_eq!(warm.exit_code, baseline.exit_code());
    let report = warm.report.expect("report JSON");
    let obligations = report
        .get("obligations")
        .and_then(Json::as_arr)
        .expect("obligations");
    assert_eq!(
        report.get("cache_hits").and_then(Json::as_u64),
        Some(obligations.len() as u64),
        "{report}"
    );
    assert_eq!(
        report
            .get("aggregate")
            .and_then(|a| a.get("solver_calls"))
            .and_then(Json::as_u64),
        Some(0),
        "warm run must not call the solver"
    );
    assert!(server.artifacts().outcome_hits() > 0);
    server.begin_shutdown();
    server.join();
}

#[test]
fn cancelled_job_drains_through_the_cancelled_taxonomy() {
    let server = Server::start(&options(1, 4)).expect("bind");
    let addr = server.addr();
    let mut saw_started = false;
    let mut saw_cancel_ack = false;
    let outcome = submit_with(
        addr,
        &slow_request(),
        Some(Duration::from_millis(300)),
        |event| match event.get("name").and_then(Json::as_str) {
            Some("job.started") => saw_started = true,
            Some("job.cancel_requested") => saw_cancel_ack = true,
            _ => {}
        },
    )
    .expect("served run");
    assert!(saw_started, "job must have started before the cancel");
    assert!(saw_cancel_ack, "server must acknowledge the cancel");
    assert_eq!(outcome.exit_code, 2, "verdict: {}", outcome.verdict);
    assert!(
        outcome.verdict.starts_with("inconclusive") && outcome.verdict.contains("cancelled"),
        "expected a cancelled-inconclusive verdict, got: {}",
        outcome.verdict
    );
    server.begin_shutdown();
    server.join();
}

/// A raw protocol client for back-pressure tests: submit a job and hold
/// the connection open without waiting for completion.
struct RawClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl RawClient {
    fn submit(addr: std::net::SocketAddr, req: &VerifyRequest) -> RawClient {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let cmd = Json::obj(vec![
            ("cmd", Json::Str("verify".into())),
            ("request", req.to_json()),
        ]);
        writeln!(writer, "{cmd}").expect("send");
        writer.flush().expect("flush");
        RawClient {
            writer,
            reader: BufReader::new(stream),
        }
    }

    /// Reads events until `name` appears.
    fn wait_for(&mut self, name: &str) {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line).expect("read event");
            assert!(n > 0, "server closed before '{name}' arrived");
            if line.contains(&format!("\"name\":\"{name}\"")) {
                return;
            }
        }
    }

    fn cancel(&mut self) {
        writeln!(self.writer, r#"{{"cmd":"cancel"}}"#).expect("send cancel");
        self.writer.flush().expect("flush");
    }
}

#[test]
fn full_queue_rejects_further_submissions() {
    // One worker, one queue slot: A runs, B waits, C must bounce.
    let server = Server::start(&options(1, 1)).expect("bind");
    let addr = server.addr();
    let mut job_a = RawClient::submit(addr, &slow_request());
    job_a.wait_for("job.started");
    let mut job_b = RawClient::submit(addr, &slow_request());
    job_b.wait_for("job.queued");
    let rejected = submit(addr, &slow_request()).expect("protocol round trip");
    assert!(rejected.rejected, "{}", rejected.verdict);
    assert_eq!(rejected.exit_code, 2);
    assert!(
        rejected.verdict.contains("queue full"),
        "{}",
        rejected.verdict
    );
    // Unblock the server so shutdown drains quickly.
    job_a.cancel();
    job_b.cancel();
    job_a.wait_for("job.done");
    job_b.wait_for("job.done");
    server.begin_shutdown();
    server.join();
}

#[test]
fn shutdown_drains_queued_work_and_stops_accepting() {
    let server = Server::start(&options(1, 4)).expect("bind");
    let addr = server.addr();
    let mut req = VerifyRequest::new("dataflow_fifo_sizing");
    req.healthy = true;
    req.bound = Some(4);
    // Submit from a thread and shut down once the job is queued: the
    // drain must finish it rather than drop it.
    let (queued_tx, queued_rx) = std::sync::mpsc::channel();
    let client = std::thread::spawn(move || {
        submit_with(addr, &req, None, |event| {
            if event.get("name").and_then(Json::as_str) == Some("job.queued") {
                let _ = queued_tx.send(());
            }
        })
        .expect("drained job")
    });
    queued_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("job must reach the queue");
    request_shutdown(addr).expect("shutdown command");
    let outcome = client.join().expect("client thread");
    assert_eq!(outcome.exit_code, 0, "{}", outcome.verdict);
    server.join();
    // The listener is gone: new connections fail outright.
    assert!(TcpStream::connect(addr).is_err() || !ping(addr));
}

#[test]
fn health_reports_queue_workers_and_store() {
    let server = Server::start(&options(3, 8)).expect("bind");
    let health = query_health(server.addr()).expect("health round trip");
    assert_eq!(health.get("workers_total").and_then(Json::as_u64), Some(3));
    assert_eq!(health.get("workers_alive").and_then(Json::as_u64), Some(3));
    assert_eq!(health.get("queue_depth").and_then(Json::as_u64), Some(0));
    assert_eq!(
        health.get("draining").and_then(Json::as_bool),
        Some(false),
        "{health}"
    );
    let store = health.get("store").expect("store stats");
    assert_eq!(store.get("persistent").and_then(Json::as_bool), Some(false));
    assert_eq!(store.get("recovered").and_then(Json::as_u64), Some(0));
    server.begin_shutdown();
    server.join();
}

/// Sends raw bytes on a fresh connection and returns the first reply
/// line.
fn raw_roundtrip(addr: std::net::SocketAddr, payload: &[u8]) -> String {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    writer.write_all(payload).expect("send");
    writer.flush().expect("flush");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("reply");
    line
}

#[test]
fn garbage_input_earns_structured_rejections_not_dead_workers() {
    let mut opts = options(1, 4);
    // Small enough to shed the 4 KiB probe below, with headroom over a
    // real request line (which grows as VerifyRequest gains fields).
    opts.max_line_bytes = 512;
    let server = Server::start(&opts).expect("bind");
    let addr = server.addr();
    // Truncated JSON.
    let reply = raw_roundtrip(addr, b"{\"cmd\":\"ver\n");
    assert!(
        reply.contains("job.rejected") && reply.contains("malformed"),
        "{reply}"
    );
    // Unknown command.
    let reply = raw_roundtrip(addr, b"{\"cmd\":\"frobnicate\"}\n");
    assert!(
        reply.contains("job.rejected") && reply.contains("unknown command"),
        "{reply}"
    );
    // No cmd field at all.
    let reply = raw_roundtrip(addr, b"{\"x\":1}\n");
    assert!(reply.contains("job.rejected"), "{reply}");
    // An oversized line is shed without being buffered.
    let mut big = vec![b'{'; 4096];
    big.push(b'\n');
    let reply = raw_roundtrip(addr, &big);
    assert!(
        reply.contains("job.rejected") && reply.contains("exceeds"),
        "{reply}"
    );
    // The worker pool is untouched: a real job still runs.
    let mut req = VerifyRequest::new("dataflow_fifo_sizing");
    req.healthy = true;
    req.bound = Some(4);
    let outcome = submit(addr, &req).expect("served run");
    assert_eq!(outcome.exit_code, 0, "{}", outcome.verdict);
    server.begin_shutdown();
    server.join();
}

#[test]
fn dead_worker_fails_its_job_and_is_respawned() {
    let mut opts = options(1, 4);
    // Chaos: any job for this case panics its worker mid-run.
    opts.panic_on_case = Some("motivating_clock_enable".into());
    let server = Server::start(&opts).expect("bind");
    let addr = server.addr();
    let doomed = submit(addr, &VerifyRequest::new("motivating_clock_enable"))
        .expect("the job must fail, not hang");
    assert_eq!(doomed.exit_code, 2);
    assert!(
        doomed.verdict.contains("worker died"),
        "expected the supervisor's job.error, got: {}",
        doomed.verdict
    );
    // The supervisor respawned the (sole) worker: a different case runs
    // to completion on it.
    let mut req = VerifyRequest::new("dataflow_fifo_sizing");
    req.healthy = true;
    req.bound = Some(4);
    let outcome = submit(addr, &req).expect("served run after respawn");
    assert_eq!(outcome.exit_code, 0, "{}", outcome.verdict);
    let health = query_health(addr).expect("health");
    assert_eq!(health.get("workers_alive").and_then(Json::as_u64), Some(1));
    server.begin_shutdown();
    server.join();
}

#[test]
fn persistent_store_warms_a_restarted_server() {
    let dir = store_dir("restart");
    let mut req = VerifyRequest::new("dataflow_fifo_sizing");
    req.healthy = true;
    req.bound = Some(6);
    let mut opts = options(2, 8);
    opts.store_dir = Some(dir.clone());
    // First daemon: cold run, verdicts journaled to disk on flush.
    let cold = {
        let server = Server::start(&opts).expect("bind");
        let outcome = submit(server.addr(), &req).expect("cold run");
        server.begin_shutdown();
        server.join();
        outcome
    };
    assert_eq!(cold.exit_code, 0, "{}", cold.verdict);
    // Second daemon on the same directory: starts warm from recovery.
    let server = Server::start(&opts).expect("rebind");
    assert!(
        server.artifacts().recovered_records() > 0,
        "restart must recover journaled records"
    );
    assert_eq!(server.artifacts().truncated_records(), 0);
    let warm = submit(server.addr(), &req).expect("warm run");
    assert_eq!(warm.exit_code, cold.exit_code);
    assert_eq!(stem(&warm.verdict), stem(&cold.verdict));
    let report = warm.report.expect("report JSON");
    let obligations = report
        .get("obligations")
        .and_then(Json::as_arr)
        .expect("obligations");
    assert_eq!(
        report.get("cache_hits").and_then(Json::as_u64),
        Some(obligations.len() as u64),
        "every obligation must be served from the recovered store: {report}"
    );
    assert_eq!(
        report
            .get("aggregate")
            .and_then(|a| a.get("solver_calls"))
            .and_then(Json::as_u64),
        Some(0)
    );
    // Health reports the on-disk footprint of a persistent store: the
    // recovered journal has bytes and records, and the snapshot size is
    // present (zero until the first compaction).
    let health = query_health(server.addr()).expect("health");
    let store = health.get("store").expect("store stats");
    assert_eq!(store.get("persistent").and_then(Json::as_bool), Some(true));
    assert!(
        store
            .get("journal_bytes")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            > 0,
        "{health}"
    );
    assert!(
        store
            .get("journal_records")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            > 0,
        "{health}"
    );
    assert!(
        store.get("snapshot_bytes").and_then(Json::as_u64).is_some(),
        "{health}"
    );
    server.begin_shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn submit_retrying_rides_out_a_daemon_restart() {
    // Bind, learn the port, then shut the first daemon down so the
    // client's first attempts see connection-refused.
    let first = Server::start(&options(1, 4)).expect("bind");
    let addr = first.addr();
    first.begin_shutdown();
    first.join();
    let addr_str = addr.to_string();
    let restarter = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        let mut opts = options(1, 4);
        opts.addr = addr_str;
        Server::start(&opts).expect("rebind on the same port")
    });
    let mut req = VerifyRequest::new("dataflow_fifo_sizing");
    req.healthy = true;
    req.bound = Some(4);
    let mut retries_seen = 0u32;
    let outcome = submit_retrying(addr, &req, 8, Duration::from_millis(50), |event| {
        if event.get("name").and_then(Json::as_str) == Some("client.retry") {
            retries_seen += 1;
        }
    })
    .expect("retrying submit must outlast the restart");
    assert_eq!(outcome.exit_code, 0, "{}", outcome.verdict);
    assert!(
        retries_seen > 0,
        "the first attempts must have been retried"
    );
    let server = restarter.join().expect("restarter");
    server.begin_shutdown();
    server.join();
}
