//! Chaos tests against the real `aqed-serve` binary: SIGKILL the daemon
//! mid-job and at arbitrary flush boundaries, restart it on the same
//! store directory, and demand (a) recovery never crashes or hangs,
//! (b) warm verdicts are identical to a cold run, and (c) obligations
//! completed before the kill are served from the recovered store.

use aqed_engine::{Engine, VerifyRequest};
use aqed_obs::json::Json;
use aqed_serve::{query_health, request_shutdown, submit_retrying, submit_with, verdict_line};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("aqed-chaos-{tag}-{}", std::process::id()))
}

/// The daemon under test, killable at any instant.
struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Daemon {
    /// Spawns the real binary against `store` and waits for it to
    /// publish its ephemeral port.
    fn spawn(store: &Path, extra: &[&str]) -> Daemon {
        let port_file = temp_path(&format!("port-{}", std::process::id()));
        let _ = std::fs::remove_file(&port_file);
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_aqed-serve"));
        cmd.arg("serve")
            .args(["--listen", "127.0.0.1:0", "--workers", "2"])
            .args(["--flush-ms", "25"])
            .arg("--store-dir")
            .arg(store)
            .arg("--port-file")
            .arg(&port_file)
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        let child = cmd.spawn().expect("spawn daemon");
        let deadline = Instant::now() + Duration::from_secs(30);
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if let Ok(addr) = text.trim().parse() {
                    break addr;
                }
            }
            assert!(Instant::now() < deadline, "daemon never published a port");
            std::thread::sleep(Duration::from_millis(10));
        };
        let _ = std::fs::remove_file(&port_file);
        Daemon { child, addr }
    }

    /// SIGKILL — no drain, no flush, no goodbye.
    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Graceful drain via the protocol, then reap.
    fn shutdown(mut self) {
        let _ = request_shutdown(self.addr);
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            match self.child.try_wait() {
                Ok(Some(_)) => return,
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                _ => {
                    let _ = self.child.kill();
                    let _ = self.child.wait();
                    return;
                }
            }
        }
    }
}

/// The verdict up to the timing parenthetical — stable across runs.
fn stem(verdict: &str) -> String {
    verdict.split(" (").next().unwrap_or(verdict).to_string()
}

/// The re-verification catalog: quick cases with one clean and one
/// buggy verdict each, so identity covers both outcome shapes.
fn catalog() -> Vec<VerifyRequest> {
    let mut clean = VerifyRequest::new("dataflow_fifo_sizing");
    clean.healthy = true;
    clean.bound = Some(6);
    let mut buggy = VerifyRequest::new("dataflow_fifo_sizing");
    buggy.bound = Some(6);
    let gate = VerifyRequest::new("motivating_clock_enable");
    vec![clean, buggy, gate]
}

/// Direct (service-free) verdict stems, the identity baseline.
fn cold_baseline() -> Vec<(i32, String)> {
    let engine = Engine::new();
    catalog()
        .iter()
        .map(|req| {
            let outcome = engine.verify(req).expect("direct run");
            (outcome.exit_code(), stem(&verdict_line(&outcome.report)))
        })
        .collect()
}

/// Submits the whole catalog with retries (the daemon may still be
/// settling after a restart) and returns (exit, stem, cache_hits).
fn submit_catalog(addr: SocketAddr) -> Vec<(i32, String, u64)> {
    catalog()
        .iter()
        .map(|req| {
            let outcome = submit_retrying(addr, req, 10, Duration::from_millis(100), |_| {})
                .expect("catalog submit");
            let hits = outcome
                .report
                .as_ref()
                .and_then(|r| r.get("cache_hits"))
                .and_then(Json::as_u64)
                .unwrap_or(0);
            (outcome.exit_code, stem(&outcome.verdict), hits)
        })
        .collect()
}

#[test]
fn sigkill_restart_resubmit_yields_cold_identical_verdicts() {
    let store = temp_path("warm-identity");
    let _ = std::fs::remove_dir_all(&store);
    let baseline = cold_baseline();

    // Phase 1: complete the catalog, then SIGKILL while a long job is
    // mid-solve — the worst instant, with the store mid-use.
    let daemon = Daemon::spawn(&store, &[]);
    let first = submit_catalog(daemon.addr);
    for ((exit, verdict, _), (want_exit, want_verdict)) in first.iter().zip(&baseline) {
        assert_eq!((exit, verdict), (&want_exit.clone(), want_verdict));
    }
    let addr = daemon.addr;
    let (started_tx, started_rx) = std::sync::mpsc::channel();
    let victim = std::thread::spawn(move || {
        let mut slow = VerifyRequest::new("aes_v1");
        slow.healthy = true;
        slow.bound = Some(8);
        slow.timeout = Some(Duration::from_secs(120));
        submit_with(addr, &slow, None, |event| {
            if event.get("name").and_then(Json::as_str) == Some("job.started") {
                let _ = started_tx.send(());
            }
        })
    });
    started_rx
        .recv_timeout(Duration::from_secs(60))
        .expect("the victim job must start");
    daemon.kill();
    // The client must fail fast (EOF/reset), not hang on a dead server.
    let severed = victim.join().expect("client thread");
    assert!(
        severed.is_err(),
        "a SIGKILLed daemon must sever the stream, got {severed:?}"
    );

    // Phase 2: restart on the same directory. Recovery must report the
    // journaled records, and the re-submitted catalog must be answered
    // from the store with verdicts identical to the cold baseline.
    let daemon = Daemon::spawn(&store, &[]);
    let health = query_health(daemon.addr).expect("health after restart");
    let store_stats = health.get("store").expect("store stats");
    assert_eq!(
        store_stats.get("persistent").and_then(Json::as_bool),
        Some(true)
    );
    assert!(
        store_stats
            .get("recovered")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            > 0,
        "restart must recover pre-kill records: {health}"
    );
    let second = submit_catalog(daemon.addr);
    for ((exit, verdict, hits), (want_exit, want_verdict)) in second.iter().zip(&baseline) {
        assert_eq!((exit, verdict), (&want_exit.clone(), want_verdict));
        assert!(
            *hits > 0,
            "obligations completed before the kill must be store hits"
        );
    }
    let health = query_health(daemon.addr).expect("health after warm runs");
    assert!(
        health
            .get("store")
            .and_then(|s| s.get("outcome_hits"))
            .and_then(Json::as_u64)
            .unwrap_or(0)
            > 0
    );
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn repeated_kills_at_varied_flush_boundaries_never_lose_the_store() {
    let store = temp_path("flush-boundaries");
    let _ = std::fs::remove_dir_all(&store);
    let baseline = cold_baseline();
    // Kill at staggered offsets relative to job completion / the 25ms
    // flush cadence; every restart must recover whatever made it to
    // disk and never refuse to start.
    for (round, delay_ms) in [0u64, 7, 31, 80].into_iter().enumerate() {
        let daemon = Daemon::spawn(&store, &[]);
        let addr = daemon.addr;
        let mut req = VerifyRequest::new("dataflow_fifo_sizing");
        req.healthy = round % 2 == 0;
        req.bound = Some(6);
        // Fire a job and kill the daemon while it may be anywhere
        // between solving and flushing.
        let client = std::thread::spawn(move || {
            let _ = submit_with(addr, &req, None, |_| {});
        });
        std::thread::sleep(Duration::from_millis(delay_ms));
        daemon.kill();
        client.join().expect("client must not hang");
    }
    // Also flip one mid-file bit to fold the corrupted-store case into
    // the chaos path (recovery truncates, does not crash).
    let journal = store.join("journal.aqed");
    if let Ok(mut bytes) = std::fs::read(&journal) {
        if bytes.len() > 2 {
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x08;
            std::fs::write(&journal, &bytes).expect("plant corruption");
        }
    }
    let daemon = Daemon::spawn(&store, &[]);
    let verdicts = submit_catalog(daemon.addr);
    for ((exit, verdict, _), (want_exit, want_verdict)) in verdicts.iter().zip(&baseline) {
        assert_eq!(
            (exit, verdict),
            (&want_exit.clone(), want_verdict),
            "post-chaos verdicts must match the cold baseline"
        );
    }
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn chaos_worker_panic_in_the_real_binary_is_survived() {
    let store = temp_path("panic-binary");
    let _ = std::fs::remove_dir_all(&store);
    let daemon = Daemon::spawn(&store, &["--chaos-panic-case", "motivating_clock_enable"]);
    // The doomed case fails with the supervisor's taxonomy...
    let doomed = submit_with(
        daemon.addr,
        &VerifyRequest::new("motivating_clock_enable"),
        None,
        |_| {},
    )
    .expect("failed job, not a hang");
    assert_eq!(doomed.exit_code, 2);
    assert!(doomed.verdict.contains("worker died"), "{}", doomed.verdict);
    // ...and the daemon keeps serving other cases on respawned workers.
    let mut req = VerifyRequest::new("dataflow_fifo_sizing");
    req.healthy = true;
    req.bound = Some(6);
    let outcome = submit_retrying(daemon.addr, &req, 5, Duration::from_millis(100), |_| {})
        .expect("served after respawn");
    assert_eq!(outcome.exit_code, 0, "{}", outcome.verdict);
    daemon.shutdown();

    // The dead worker must have left a postmortem bundle behind: the
    // flight recorder's recent events plus the job, request and stats
    // context, self-describing enough for offline triage.
    let bundles: Vec<PathBuf> = std::fs::read_dir(store.join("postmortem"))
        .expect("postmortem dir must exist after a worker death")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.contains("worker-died"))
        })
        .collect();
    assert_eq!(
        bundles.len(),
        1,
        "exactly one worker-died bundle: {bundles:?}"
    );
    let text = std::fs::read_to_string(&bundles[0]).expect("read bundle");
    let bundle = aqed_obs::json::parse(&text).expect("bundle parses");
    assert_eq!(
        bundle.get("kind").and_then(Json::as_str),
        Some("aqed-postmortem")
    );
    assert_eq!(
        bundle.get("reason").and_then(Json::as_str),
        Some("worker-died")
    );
    assert_eq!(
        bundle.get("case").and_then(Json::as_str),
        Some("motivating_clock_enable"),
        "bundle must name the doomed case"
    );
    assert!(
        bundle.get("request").is_some(),
        "bundle must carry the request for replay"
    );
    let events = match bundle.get("events") {
        Some(Json::Arr(items)) => items.clone(),
        other => panic!("bundle events must be an array, got {other:?}"),
    };
    assert!(
        !events.is_empty(),
        "the flight recorder must have captured pre-death events"
    );
    for ev in &events {
        assert!(
            ev.get("ts").and_then(Json::as_u64).is_some()
                && ev.get("name").and_then(Json::as_str).is_some(),
            "malformed recorded event: {ev}"
        );
    }
    let _ = std::fs::remove_dir_all(&store);
}
