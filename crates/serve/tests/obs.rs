//! Observability-plane tests of the daemon: the `stats` snapshot,
//! heartbeat attribution, the flight recorder's memory bound, and the
//! error paths of the one-shot admin client helpers.
//!
//! The trace-sink slot is process-global and every `Server::start`
//! claims it, so tests that assert on a specific server's recorder
//! serialize on [`OBS_LOCK`].

use aqed_engine::VerifyRequest;
use aqed_obs::json::Json;
use aqed_serve::{query_health, query_stats, submit, submit_with, ServeOptions, Server};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn options(workers: usize, queue: usize) -> ServeOptions {
    ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_capacity: queue,
        ..ServeOptions::default()
    }
}

fn quick_request() -> VerifyRequest {
    let mut req = VerifyRequest::new("dataflow_fifo_sizing");
    req.healthy = true;
    req.bound = Some(4);
    req
}

/// See `slow_request` in serve.rs: healthy AES at bound 8 runs far
/// longer than any test step, and the timeout bounds the worst case.
fn slow_request() -> VerifyRequest {
    let mut req = VerifyRequest::new("aes_v1");
    req.healthy = true;
    req.bound = Some(8);
    req.timeout = Some(Duration::from_secs(120));
    req
}

#[test]
fn stats_exposes_prometheus_text_and_rates_after_traffic() {
    let _guard = lock();
    let server = Server::start(&options(2, 8)).expect("bind");
    let addr = server.addr();
    for _ in 0..2 {
        let outcome = submit(addr, &quick_request()).expect("served run");
        assert_eq!(outcome.exit_code, 0, "{}", outcome.verdict);
    }
    let stats = query_stats(addr).expect("stats round trip");

    let prom = stats
        .get("prometheus")
        .and_then(Json::as_str)
        .expect("prometheus text");
    // Well-formed exposition: every non-comment line is `name[{labels}] value`.
    for line in prom
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
    {
        let (name, value) = line.rsplit_once(' ').expect("name value");
        assert!(
            name.starts_with("aqed_"),
            "metric without the aqed_ prefix: {line}"
        );
        assert!(
            value == "+Inf" || value.parse::<f64>().is_ok(),
            "unparseable sample value in: {line}"
        );
    }
    let done_line = prom
        .lines()
        .find(|l| l.starts_with("aqed_serve_jobs_completed_total "))
        .expect("jobs-completed counter exposed");
    let done: f64 = done_line.split(' ').nth(1).unwrap().parse().unwrap();
    assert!(done >= 2.0, "expected >= 2 completed jobs, got {done_line}");

    // The structured form carries the same counters plus rate windows.
    let metrics = stats.get("metrics").expect("metrics json");
    assert!(
        metrics
            .get("uptime_ms")
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
            > 0.0,
        "uptime must be positive"
    );
    let counters = metrics.get("counters").expect("counters");
    assert!(
        counters
            .get("serve.jobs.completed")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            >= 2,
        "{counters}"
    );

    // The recorder section reports a bounded, non-empty ring.
    let rec = stats.get("recorder").expect("recorder stats");
    let bytes = rec.get("approx_bytes").and_then(Json::as_u64).unwrap();
    let max = rec.get("max_bytes").and_then(Json::as_u64).unwrap();
    assert!(bytes <= max, "recorder over budget: {bytes} > {max}");
    assert!(
        rec.get("events").and_then(Json::as_u64).unwrap() > 0,
        "traffic must have left events in the ring"
    );
    server.begin_shutdown();
    server.join();
}

#[test]
fn job_done_carries_attribution_and_heartbeats_carry_progress() {
    let _guard = lock();
    let mut opts = options(1, 4);
    // Fast heartbeats so a sub-second cancelled job still sees several.
    opts.heartbeat_interval = Duration::from_millis(50);
    let server = Server::start(&opts).expect("bind");
    let addr = server.addr();

    // A quick healthy job: its job.done event must carry attribution.
    let mut attribution = Json::Null;
    let outcome = submit_with(addr, &quick_request(), None, |event| {
        if event.get("name").and_then(Json::as_str) == Some("job.done") {
            if let Some(args) = event.get("args") {
                attribution = args.get("attribution").cloned().unwrap_or(Json::Null);
            }
        }
    })
    .expect("served run");
    assert_eq!(outcome.exit_code, 0, "{}", outcome.verdict);
    assert_eq!(
        attribution.get("phase").and_then(Json::as_str),
        Some("done"),
        "attribution: {attribution}"
    );
    let obligations = attribution.get("obligations").expect("obligations");
    let total = obligations.get("total").and_then(Json::as_u64).unwrap();
    let done = obligations.get("done").and_then(Json::as_u64).unwrap();
    assert!(total > 0 && done == total, "{attribution}");
    let solver = attribution.get("solver").expect("solver totals");
    assert!(
        solver.get("calls").and_then(Json::as_u64).unwrap() > 0,
        "{attribution}"
    );
    let phases = attribution.get("phases_ms").expect("phase breakdown");
    for key in ["queue_wait", "coi", "preprocess", "encode", "solve"] {
        assert!(
            phases.get(key).and_then(Json::as_f64).is_some(),
            "missing phase '{key}' in {attribution}"
        );
    }
    assert!(
        phases.get("solve").and_then(Json::as_f64).unwrap() > 0.0,
        "a solved job must have spent time in the solve phase: {attribution}"
    );

    // A slow job cancelled after ~400ms: heartbeats at 50ms cadence
    // must arrive, and must report the running phase with progress
    // counters attached.
    let mut beats = Vec::new();
    let outcome = submit_with(
        addr,
        &slow_request(),
        Some(Duration::from_millis(400)),
        |event| {
            if event.get("name").and_then(Json::as_str) == Some("job.heartbeat") {
                if let Some(args) = event.get("args") {
                    beats.push(args.clone());
                }
            }
        },
    )
    .expect("served run");
    assert_eq!(outcome.exit_code, 2, "{}", outcome.verdict);
    assert!(
        beats.len() >= 2,
        "expected several heartbeats from a 400ms job at 50ms cadence, got {}",
        beats.len()
    );
    for beat in &beats {
        assert_eq!(
            beat.get("phase").and_then(Json::as_str),
            Some("running"),
            "{beat}"
        );
        assert!(beat.get("conflicts").and_then(Json::as_u64).is_some());
        assert!(beat.get("elapsed_ms").and_then(Json::as_u64).is_some());
        assert!(beat
            .get("obligations_total")
            .and_then(Json::as_u64)
            .is_some());
    }
    // AES at bound 8 grinds conflicts: the last beat must show solver
    // progress, not a flat zero.
    assert!(
        beats
            .last()
            .and_then(|b| b.get("conflicts"))
            .and_then(Json::as_u64)
            .unwrap()
            > 0,
        "heartbeat conflicts never moved"
    );
    server.begin_shutdown();
    server.join();
}

#[test]
fn flight_recorder_stays_within_its_byte_budget_under_load() {
    let _guard = lock();
    let mut opts = options(2, 16);
    // A deliberately tiny ring (the server clamps to a 4 KiB floor) so
    // a handful of jobs is guaranteed to overflow it.
    opts.recorder_bytes = 1;
    let server = Server::start(&opts).expect("bind");
    let addr = server.addr();
    for _ in 0..4 {
        let outcome = submit(addr, &quick_request()).expect("served run");
        assert_eq!(outcome.exit_code, 0, "{}", outcome.verdict);
    }
    let rec = server.recorder();
    assert_eq!(rec.max_bytes(), 1 << 12, "clamped to the floor");
    assert!(
        rec.approx_bytes() <= rec.max_bytes(),
        "ring at {} bytes exceeds budget {}",
        rec.approx_bytes(),
        rec.max_bytes()
    );
    assert!(
        rec.dropped() > 0,
        "4 verification jobs must overflow a 4 KiB ring"
    );
    assert!(!rec.is_empty(), "the newest events are retained");
    server.begin_shutdown();
    server.join();
}

/// Spawns a one-connection fake daemon that answers every connection
/// with `reply` bytes, then closes. Returns its address.
fn fake_daemon(reply: &'static [u8]) -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake");
    let addr = listener.local_addr().expect("addr");
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { return };
            // Drain the request line first so the client's write never
            // races the close.
            let mut line = String::new();
            let _ = BufReader::new(stream.try_clone().expect("clone")).read_line(&mut line);
            let _ = stream.write_all(reply);
            let _ = stream.flush();
        }
    });
    addr
}

#[test]
fn admin_helpers_reject_early_close_and_garbage_replies() {
    // Early close: EOF before any reply line.
    let addr = fake_daemon(b"");
    let err = query_health(addr).expect_err("EOF must not parse as health");
    assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "{err}");
    let err = query_stats(addr).expect_err("EOF must not parse as stats");
    assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "{err}");

    // Garbage reply: not JSON at all.
    let addr = fake_daemon(b"!!! not json !!!\n");
    let err = query_health(addr).expect_err("garbage must not parse");
    assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
    assert!(err.to_string().contains("malformed"), "{err}");

    // Valid JSON, wrong event name.
    let addr = fake_daemon(b"{\"name\":\"server.pong\",\"args\":{}}\n");
    let err = query_stats(addr).expect_err("pong is not stats");
    assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
    assert!(err.to_string().contains("server.stats"), "{err}");
}

#[test]
fn oversized_admin_command_earns_a_structured_rejection() {
    let _guard = lock();
    let mut opts = options(1, 4);
    opts.max_line_bytes = 256;
    let server = Server::start(&opts).expect("bind");
    let addr = server.addr();

    // A stats command padded past the line limit: the daemon must
    // reject it as a protocol error, and the typed helper must surface
    // that as InvalidData rather than hanging or panicking.
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let padded = format!("{{\"cmd\":\"stats\",\"pad\":\"{}\"}}", "x".repeat(512));
    writeln!(writer, "{padded}").expect("send");
    writer.flush().expect("flush");
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).expect("reply");
    assert!(
        line.contains("job.rejected") || line.contains("protocol.error"),
        "oversized line must be rejected, got: {line}"
    );

    // A well-formed stats query on a fresh connection still works.
    let stats = query_stats(addr).expect("stats after a rejected peer");
    assert!(stats.get("prometheus").is_some());
    server.begin_shutdown();
    server.join();
}
