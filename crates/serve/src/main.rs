//! The `aqed-serve` binary: daemon (`serve`), client (`submit`) and
//! admin (`shutdown`, `ping`, `health`) front ends over the library.
//!
//! `submit` prints the same verdict line as `aqed verify` and exits
//! with the same taxonomy (0 clean, 1 bug, 2 inconclusive / errored /
//! cancelled / rejected, 3 usage or I/O error), so scripts can treat a
//! service-routed run and a one-shot run interchangeably.

use aqed_engine::VerifyRequest;
use aqed_obs::json::Json;
use aqed_serve::{
    ping, query_health, query_stats, request_dump, request_shutdown, submit_retrying, submit_with,
    ServeOptions, Server,
};
use std::io::{self, Write};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage:
  aqed-serve serve [--listen ADDR] [--workers N] [--queue N] [--port-file PATH]
                   [--store-dir DIR] [--flush-ms N] [--max-line-bytes N]
                   [--max-connections N] [--heartbeat-ms N] [--recorder-bytes N]
  aqed-serve submit --addr ADDR CASE [verify flags] [--cancel-after-ms N] [--events]
                    [--retries N] [--retry-backoff-ms N]
  aqed-serve shutdown --addr ADDR
  aqed-serve ping --addr ADDR
  aqed-serve health --addr ADDR
  aqed-serve stats --addr ADDR [--json]
  aqed-serve dump --addr ADDR

verify flags (mirroring `aqed verify`):
  --healthy --bound N --jobs N --backend cdcl|dimacs|portfolio
  --portfolio-workers N --no-clause-sharing --timeout-secs S
  --conflict-budget N --fail-fast --no-preprocess --no-coi";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(3)
        }
    }
}

fn run(args: &[String]) -> io::Result<u8> {
    match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("submit") => submit_cmd(&args[1..]),
        Some("shutdown") => {
            let addr = required_addr(&args[1..])?;
            request_shutdown(addr.as_str())?;
            println!("shutdown requested");
            Ok(0)
        }
        Some("ping") => {
            let addr = required_addr(&args[1..])?;
            if ping(addr.as_str()) {
                println!("pong");
                Ok(0)
            } else {
                println!("no answer");
                Ok(2)
            }
        }
        Some("health") => {
            let addr = required_addr(&args[1..])?;
            println!("{}", query_health(addr.as_str())?);
            Ok(0)
        }
        Some("stats") => {
            let addr = required_addr(&args[1..])?;
            let stats = query_stats(addr.as_str())?;
            if args[1..].iter().any(|a| a == "--json") {
                println!("{stats}");
            } else {
                // Default to the Prometheus text form — that is what a
                // scraper (or a grep in ci.sh) wants to see.
                let text = stats
                    .get("prometheus")
                    .and_then(Json::as_str)
                    .unwrap_or_default();
                print!("{text}");
                io::stdout().flush()?;
            }
            Ok(0)
        }
        Some("dump") => {
            let addr = required_addr(&args[1..])?;
            let reply = request_dump(addr.as_str())?;
            if let Some(path) = reply.get("path").and_then(Json::as_str) {
                println!("{path}");
                Ok(0)
            } else {
                let msg = reply
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("dump failed");
                eprintln!("error: {msg}");
                Ok(2)
            }
        }
        _ => {
            eprintln!("{USAGE}");
            Ok(3)
        }
    }
}

fn usage_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidInput, msg.into())
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: Option<&String>) -> io::Result<T> {
    v.ok_or_else(|| usage_err(format!("{flag} needs a value")))?
        .parse()
        .map_err(|_| usage_err(format!("{flag} needs a number")))
}

fn required_addr(args: &[String]) -> io::Result<String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--addr" {
            return it
                .next()
                .cloned()
                .ok_or_else(|| usage_err("--addr needs a value"));
        }
    }
    Err(usage_err("--addr HOST:PORT is required"))
}

fn serve(args: &[String]) -> io::Result<u8> {
    let mut opts = ServeOptions::default();
    let mut port_file: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--listen" => {
                opts.addr = it
                    .next()
                    .cloned()
                    .ok_or_else(|| usage_err("--listen needs a value"))?;
            }
            "--workers" => opts.workers = parse_num("--workers", it.next())?,
            "--queue" => opts.queue_capacity = parse_num("--queue", it.next())?,
            "--port-file" => port_file = it.next().cloned(),
            "--store-dir" => {
                let dir = it
                    .next()
                    .ok_or_else(|| usage_err("--store-dir needs a value"))?;
                opts.store_dir = Some(dir.into());
            }
            "--flush-ms" => {
                let ms: u64 = parse_num("--flush-ms", it.next())?;
                opts.flush_interval = Duration::from_millis(ms.max(1));
            }
            "--max-line-bytes" => {
                opts.max_line_bytes = parse_num("--max-line-bytes", it.next())?;
            }
            "--max-connections" => {
                opts.max_connections = parse_num("--max-connections", it.next())?;
            }
            "--heartbeat-ms" => {
                let ms: u64 = parse_num("--heartbeat-ms", it.next())?;
                opts.heartbeat_interval = Duration::from_millis(ms.max(10));
            }
            "--recorder-bytes" => {
                opts.recorder_bytes = parse_num("--recorder-bytes", it.next())?;
            }
            // Chaos hook for the crash-recovery test suite; deliberately
            // undocumented in USAGE.
            "--chaos-panic-case" => opts.panic_on_case = it.next().cloned(),
            other => return Err(usage_err(format!("unknown serve flag '{other}'"))),
        }
    }
    let server = Server::start(&opts)?;
    println!("listening on {}", server.addr());
    io::stdout().flush()?;
    if let Some(path) = port_file {
        std::fs::write(path, server.addr().to_string())?;
    }
    // First Ctrl-C drains gracefully (finish queued and in-flight jobs,
    // stop accepting); a second one falls through to the default
    // disposition and terminates.
    let stop = aqed_sat::stop_on_sigint();
    while !server.shutdown_started() {
        if stop.is_requested() {
            server.begin_shutdown();
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    server.join();
    println!("drained");
    Ok(0)
}

/// A deferred request mutation, applied once the case id is known.
type RequestEdit = Box<dyn FnOnce(&mut VerifyRequest)>;

fn submit_cmd(args: &[String]) -> io::Result<u8> {
    let mut addr: Option<String> = None;
    let mut case: Option<String> = None;
    let mut cancel_after: Option<Duration> = None;
    let mut events = false;
    let mut retries: u32 = 0;
    let mut retry_backoff = Duration::from_millis(100);
    let mut edits: Vec<RequestEdit> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = it.next().cloned(),
            "--healthy" => edits.push(Box::new(|r| r.healthy = true)),
            "--bound" => {
                let b: usize = parse_num("--bound", it.next())?;
                edits.push(Box::new(move |r| r.bound = Some(b)));
            }
            "--jobs" => {
                let j: usize = parse_num("--jobs", it.next())?;
                edits.push(Box::new(move |r| r.jobs = j.max(1)));
            }
            "--backend" => {
                let b = it
                    .next()
                    .ok_or_else(|| usage_err("--backend needs a value"))?
                    .parse()
                    .map_err(usage_err)?;
                edits.push(Box::new(move |r| r.backend = b));
            }
            "--portfolio-workers" => {
                let w: usize = parse_num("--portfolio-workers", it.next())?;
                edits.push(Box::new(move |r| r.portfolio_workers = w.max(1)));
            }
            "--no-clause-sharing" => edits.push(Box::new(|r| r.clause_sharing = false)),
            "--timeout-secs" => {
                let s: f64 = parse_num("--timeout-secs", it.next())?;
                if s <= 0.0 || !s.is_finite() {
                    return Err(usage_err("--timeout-secs needs a positive number"));
                }
                edits.push(Box::new(move |r| {
                    r.timeout = Some(Duration::from_secs_f64(s))
                }));
            }
            "--conflict-budget" => {
                let c: u64 = parse_num("--conflict-budget", it.next())?;
                edits.push(Box::new(move |r| r.conflict_budget = Some(c)));
            }
            "--fail-fast" => edits.push(Box::new(|r| r.fail_fast = true)),
            "--no-preprocess" => edits.push(Box::new(|r| r.preprocess = false)),
            "--no-coi" => edits.push(Box::new(|r| r.coi = false)),
            "--cancel-after-ms" => {
                let ms: u64 = parse_num("--cancel-after-ms", it.next())?;
                cancel_after = Some(Duration::from_millis(ms));
            }
            "--events" => events = true,
            "--retries" => retries = parse_num("--retries", it.next())?,
            "--retry-backoff-ms" => {
                let ms: u64 = parse_num("--retry-backoff-ms", it.next())?;
                retry_backoff = Duration::from_millis(ms.max(1));
            }
            other if !other.starts_with('-') && case.is_none() => {
                case = Some(other.to_string());
            }
            other => return Err(usage_err(format!("unknown submit flag '{other}'"))),
        }
    }
    let addr = addr.ok_or_else(|| usage_err("--addr HOST:PORT is required"))?;
    let case = case.ok_or_else(|| usage_err("submit needs a CASE id"))?;
    let mut req = VerifyRequest::new(case);
    for edit in edits {
        edit(&mut req);
    }
    let on_event = |event: &aqed_obs::json::Json| {
        if events {
            println!("{event}");
        }
    };
    // Cancellation is interactive (one attempt by definition); plain
    // submits may ride the retrying path, which is idempotent because
    // results are keyed by design hash in the daemon's artifact store.
    let outcome = if retries > 0 && cancel_after.is_none() {
        submit_retrying(addr.as_str(), &req, retries, retry_backoff, on_event)?
    } else {
        submit_with(addr.as_str(), &req, cancel_after, on_event)?
    };
    println!("{}", outcome.verdict);
    Ok(u8::try_from(outcome.exit_code).unwrap_or(2))
}
