//! `aqed-serve`: a long-lived verification daemon over [`aqed_engine`].
//!
//! The engine made a verification run a value ([`VerifyRequest`] in,
//! outcome out); this crate makes it a *service*: a TCP listener feeds a
//! bounded job queue drained by a persistent worker pool, every worker
//! drives the same [`Engine`] so the cross-request
//! [`aqed_core::ArtifactStore`] stays warm, and each
//! connection streams its job's lifecycle as JSON-lines events.
//!
//! # Wire protocol
//!
//! One JSON object per line in both directions. The client speaks
//! commands:
//!
//! ```text
//! {"cmd":"verify","request":{"case":"aes_v1","bound":12,...}}
//! {"cmd":"cancel"}          cancel this connection's job
//! {"cmd":"ping"}            liveness probe
//! {"cmd":"health"}          queue/worker/store snapshot
//! {"cmd":"shutdown"}        drain the queue and stop the daemon
//! ```
//!
//! The server answers with *events* in exactly the shape the
//! observability JSONL sink writes (`{"ts":..,"tid":..,"ph":"I",
//! "name":..,"args":{..}}`, see `aqed-obs`), so the existing
//! `trace_report` tooling can digest a captured session stream
//! unchanged. Lifecycle names: `job.queued`, `job.started`,
//! `job.heartbeat`, `job.cancel_requested`, `job.done`, `job.error`,
//! `job.rejected`, `server.pong`, `server.health`, `server.shutdown`,
//! `protocol.error`. A `job.done` event carries the exit code, the
//! CLI-identical verdict line and the full report JSON.
//!
//! Input is treated as hostile: reads are bounded by
//! [`ServeOptions::max_line_bytes`], and an oversized line, truncated
//! JSON or unknown command earns a structured `job.rejected` event and a
//! closed connection — never an unbounded buffer, never a worker death.
//!
//! # Cancellation and drain
//!
//! Every job gets a [`StopHandle`] chained off the server root; a
//! client `cancel` (or dropping the connection mid-flight) trips the
//! job's handle and the run drains through the ordinary
//! `Inconclusive {reason: Cancelled}` taxonomy — exit code 2, same as
//! Ctrl-C on the one-shot CLI. Shutdown is graceful: the listener stops
//! accepting, queued jobs still run, workers exit when the queue is
//! empty, and [`Server::join`] returns once they have.
//!
//! # Durability and self-healing
//!
//! With [`ServeOptions::store_dir`] set, the artifact store journals
//! every definitive verdict and cone to disk ([`aqed_core`]'s
//! append-only checksummed journal): a flush runs after every job, on a
//! periodic timer ([`ServeOptions::flush_interval`], covering
//! long multi-obligation runs), and once more when the drain completes —
//! a SIGKILL at any instant loses at most the unflushed window, and the
//! next daemon on the same directory starts warm.
//!
//! Workers are supervised: a worker that dies (panic, chaos injection)
//! has its in-flight job failed to the waiting client through the
//! ordinary `job.error` taxonomy — never silently dropped — and is
//! respawned while the server is accepting work. Queue saturation and
//! connection floods shed load with `job.rejected` instead of queueing
//! unboundedly.

use aqed_core::{ArtifactStore, CheckOutcome, ParallelVerifyReport};
use aqed_engine::{Engine, VerifyRequest};
use aqed_obs::aggregate::Aggregator;
use aqed_obs::json::{self, Json};
use aqed_obs::metrics;
use aqed_obs::{FlightRecorder, JobMeter, MeterPhase};
use aqed_sat::StopHandle;
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant, SystemTime};

/// How a [`Server`] is configured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOptions {
    /// Address to listen on. Port 0 picks an ephemeral port; read the
    /// bound address back from [`Server::addr`].
    pub addr: String,
    /// Persistent worker threads draining the job queue. Each runs one
    /// job at a time through the shared engine.
    pub workers: usize,
    /// Maximum number of *queued* (not yet started) jobs before new
    /// submissions are rejected with `job.rejected`.
    pub queue_capacity: usize,
    /// Directory for the durable artifact store. `None` keeps the store
    /// in memory (warm within the process, gone with it).
    pub store_dir: Option<PathBuf>,
    /// How often the periodic flusher persists journal records written
    /// mid-run. Ignored for in-memory stores.
    pub flush_interval: Duration,
    /// Longest accepted protocol line; longer input is shed with
    /// `job.rejected` instead of buffered.
    pub max_line_bytes: usize,
    /// Concurrent connections before new ones are shed with
    /// `job.rejected`.
    pub max_connections: usize,
    /// Chaos hook: a worker picking up a job for this case id panics
    /// after `job.started`. Exercises the supervisor in tests; keep
    /// `None` in production.
    pub panic_on_case: Option<String>,
    /// Cadence of `job.heartbeat` events while a job runs. Each
    /// heartbeat carries the job's attribution-so-far (phase, elapsed,
    /// conflicts, obligations done).
    pub heartbeat_interval: Duration,
    /// Byte budget of the in-memory flight recorder (oldest events
    /// evicted past it). The recorder is always on; this only bounds
    /// its memory.
    pub recorder_bytes: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 16,
            store_dir: None,
            flush_interval: Duration::from_millis(500),
            max_line_bytes: 1 << 20,
            max_connections: 64,
            panic_on_case: None,
            heartbeat_interval: Duration::from_secs(1),
            recorder_bytes: 1 << 20,
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Writes JSONL events for one connection. Cloned freely: the worker,
/// the heartbeat thread and the connection handler all emit through the
/// same shared stream.
#[derive(Debug, Clone)]
struct Emitter {
    stream: Arc<Mutex<TcpStream>>,
    epoch: Instant,
}

impl Emitter {
    fn emit(&self, name: &str, args: Vec<(&'static str, Json)>) {
        // Mirror the protocol event into the trace stream so the
        // flight recorder sees job lifecycle transitions even when a
        // job dies before any solver activity; the job id (when
        // present) keeps postmortem timelines attributable.
        if aqed_obs::enabled() {
            let job = args
                .iter()
                .find(|(k, _)| *k == "job")
                .and_then(|(_, v)| v.as_u64())
                .unwrap_or(0);
            aqed_obs::obs_event!("serve.emit", event = name.to_string(), job = job);
        }
        let event = Json::obj(vec![
            ("ts", Json::num(self.epoch.elapsed().as_nanos() as u64)),
            ("tid", Json::num(0)),
            ("ph", Json::Str("I".into())),
            ("name", Json::Str(name.into())),
            ("args", Json::obj(args)),
        ]);
        let mut s = lock(&self.stream);
        // A dead client is not the server's problem: the job still runs
        // to completion (or cancellation via the EOF path) and the event
        // is simply dropped.
        let _ = writeln!(&mut *s, "{event}");
        let _ = s.flush();
    }
}

/// One queued verification job.
struct Job {
    id: u64,
    request: VerifyRequest,
    stop: StopHandle,
    done: Arc<AtomicBool>,
    emitter: Emitter,
    /// Shared attribution: the scheduler writes, the heartbeat thread
    /// and the terminal `job.done` event read.
    meter: Arc<JobMeter>,
    /// When the job entered the queue; queue-wait attribution.
    queued_at: Instant,
}

/// What the supervisor needs to fail a job whose worker died: enough to
/// emit the terminal `job.error` to the waiting client, and enough
/// context (the request) to write a useful postmortem bundle.
struct InFlight {
    id: u64,
    case: String,
    emitter: Emitter,
    done: Arc<AtomicBool>,
    request: Json,
}

/// The supervisor's view of one worker: a liveness flag flipped by the
/// worker's drop guard (normal exit *and* panic unwind both flip it)
/// and the job it was running when last seen.
struct WorkerSlot {
    alive: Arc<AtomicBool>,
    inflight: Arc<Mutex<Option<InFlight>>>,
}

/// Flips the worker's liveness flag on the way out, however the worker
/// leaves — clean drain or panic unwind.
struct AliveGuard(Arc<AtomicBool>);

impl Drop for AliveGuard {
    fn drop(&mut self) {
        self.0.store(false, Ordering::Release);
    }
}

struct ServerState {
    engine: Engine,
    artifacts: Arc<ArtifactStore>,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    queue_capacity: usize,
    shutdown: AtomicBool,
    /// Set by the supervisor once every worker has exited and the final
    /// flush has run; releases the periodic flusher.
    drained: AtomicBool,
    job_seq: AtomicU64,
    root_stop: StopHandle,
    epoch: Instant,
    slots: Mutex<Vec<WorkerSlot>>,
    connections: AtomicUsize,
    max_connections: usize,
    max_line_bytes: usize,
    flush_interval: Duration,
    panic_on_case: Option<String>,
    heartbeat_interval: Duration,
    /// The always-on flight recorder; also installed as the process
    /// trace sink while this server lives.
    recorder: Arc<FlightRecorder>,
    /// Rolling-window rate/quantile aggregation, advanced by the
    /// flusher tick, exposed by the `stats` command.
    aggregator: Aggregator,
    /// `<store_dir>/postmortem`; `None` (in-memory store) disables
    /// bundle writing.
    postmortem_dir: Option<PathBuf>,
}

impl ServerState {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.queue_cv.notify_all();
    }

    fn health_args(&self) -> Vec<(&'static str, Json)> {
        let (alive, total, active) = {
            let slots = lock(&self.slots);
            let alive = slots
                .iter()
                .filter(|s| s.alive.load(Ordering::Acquire))
                .count();
            let active = slots.iter().filter(|s| lock(&s.inflight).is_some()).count();
            (alive, slots.len(), active)
        };
        vec![
            ("queue_depth", Json::num(lock(&self.queue).len() as u64)),
            ("active_jobs", Json::num(active as u64)),
            ("workers_alive", Json::num(alive as u64)),
            ("workers_total", Json::num(total as u64)),
            (
                "connections",
                Json::num(self.connections.load(Ordering::Acquire) as u64),
            ),
            (
                "draining",
                Json::Bool(self.shutdown.load(Ordering::Acquire)),
            ),
            (
                "uptime_ms",
                Json::num(self.epoch.elapsed().as_millis() as u64),
            ),
            ("store", self.artifacts.stats_json()),
        ]
    }

    /// Payload of the `stats` admin command: the full metrics
    /// exposition (counters, gauges, histogram quantiles, windowed
    /// rates) in both Prometheus text and JSON form, plus flight
    /// recorder occupancy.
    fn stats_args(&self) -> Vec<(&'static str, Json)> {
        let snap = metrics::global().snapshot();
        vec![
            (
                "prometheus",
                Json::Str(self.aggregator.expose_prometheus(&snap)),
            ),
            ("metrics", self.aggregator.expose_json(&snap)),
            ("recorder", self.recorder_json()),
        ]
    }

    fn recorder_json(&self) -> Json {
        Json::obj(vec![
            ("events", Json::num(self.recorder.len() as u64)),
            (
                "approx_bytes",
                Json::num(self.recorder.approx_bytes() as u64),
            ),
            ("max_bytes", Json::num(self.recorder.max_bytes() as u64)),
            ("dropped", Json::num(self.recorder.dropped())),
        ])
    }
}

/// Writes a postmortem bundle — recent flight-recorder events, the
/// metrics exposition, server health, and whatever job context is
/// known — into `<store_dir>/postmortem/`. Returns the bundle path,
/// or `None` when the server runs without a store directory. Bundle
/// writing must never take the server down: all I/O errors are
/// swallowed (the failure is still visible as a missing bundle and an
/// unchanged `serve.postmortems.written` counter).
fn write_postmortem(
    state: &ServerState,
    reason: &str,
    job: Option<(u64, &str)>,
    request: Option<Json>,
    verdict: Option<(u64, String)>,
) -> Option<PathBuf> {
    let dir = state.postmortem_dir.as_ref()?;
    // Drain this thread's pending trace batch into the recorder so the
    // bundle sees the freshest events (other threads flush their own
    // batches at batch boundaries and on exit).
    aqed_obs::flush();
    let events: Vec<Json> = state
        .recorder
        .recent()
        .iter()
        .map(|ev| json::parse(&aqed_obs::sink::event_to_json(ev)).unwrap_or(Json::Null))
        .collect();
    let snap = metrics::global().snapshot();
    let mut fields = vec![
        ("kind", Json::Str("aqed-postmortem".into())),
        ("version", Json::num(1)),
        ("reason", Json::Str(reason.into())),
        (
            "uptime_ms",
            Json::num(state.epoch.elapsed().as_millis() as u64),
        ),
    ];
    if let Some((id, case)) = job {
        fields.push(("job", Json::num(id)));
        fields.push(("case", Json::Str(case.into())));
    }
    if let Some(req) = request {
        fields.push(("request", req));
    }
    if let Some((exit_code, line)) = verdict {
        fields.push(("exit_code", Json::num(exit_code)));
        fields.push(("verdict", Json::Str(line)));
    }
    fields.push(("health", Json::obj(state.health_args())));
    fields.push(("stats", state.aggregator.expose_json(&snap)));
    fields.push(("recorder", state.recorder_json()));
    fields.push(("events", Json::Arr(events)));
    let bundle = Json::obj(fields);
    std::fs::create_dir_all(dir).ok()?;
    let name = match job {
        Some((id, _)) => format!(
            "job{id}-{reason}-{}.json",
            state.epoch.elapsed().as_millis()
        ),
        None => format!("{reason}-{}.json", state.epoch.elapsed().as_millis()),
    };
    let path = dir.join(name);
    std::fs::write(&path, format!("{bundle}\n")).ok()?;
    metrics::global().counter("serve.postmortems.written").inc();
    Some(path)
}

/// A running verification daemon. Construct with [`Server::start`];
/// stop with [`Server::begin_shutdown`] (or a client `shutdown`
/// command) followed by [`Server::join`].
pub struct Server {
    state: Arc<ServerState>,
    addr: SocketAddr,
    threads: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listener, opens (and recovers) the artifact store,
    /// spawns the accept loop, the worker pool, its supervisor and the
    /// periodic flusher, and returns immediately.
    ///
    /// # Errors
    ///
    /// Propagates bind failures, store-directory I/O failures (on-disk
    /// *corruption* is recovered from, not an error) and thread-spawn
    /// failures.
    pub fn start(opts: &ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let artifacts = Arc::new(match &opts.store_dir {
            Some(dir) => ArtifactStore::open(dir)?,
            None => ArtifactStore::new(),
        });
        // Always-on flight recorder: install it as the process trace
        // sink and enable observability so every job leaves a bounded
        // in-memory trail for postmortems. The recorder is process
        // global (the obs sink slot is); the last started server owns
        // it, which is exactly one server in a real daemon process.
        let recorder = Arc::new(FlightRecorder::new(opts.recorder_bytes.max(1 << 12)));
        aqed_obs::install_sink(Arc::clone(&recorder) as Arc<dyn aqed_obs::TraceSink>);
        aqed_obs::set_enabled(true);
        let state = Arc::new(ServerState {
            engine: Engine::with_artifacts(Arc::clone(&artifacts)),
            artifacts,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            queue_capacity: opts.queue_capacity.max(1),
            shutdown: AtomicBool::new(false),
            drained: AtomicBool::new(false),
            job_seq: AtomicU64::new(0),
            root_stop: StopHandle::new(),
            epoch: Instant::now(),
            slots: Mutex::new(Vec::new()),
            connections: AtomicUsize::new(0),
            max_connections: opts.max_connections.max(1),
            max_line_bytes: opts.max_line_bytes.max(64),
            flush_interval: opts.flush_interval.max(Duration::from_millis(10)),
            panic_on_case: opts.panic_on_case.clone(),
            heartbeat_interval: opts.heartbeat_interval.max(Duration::from_millis(10)),
            recorder,
            aggregator: Aggregator::standard(),
            postmortem_dir: opts.store_dir.as_ref().map(|d| d.join("postmortem")),
        });
        let mut worker_handles = Vec::with_capacity(opts.workers.max(1));
        {
            let mut slots = lock(&state.slots);
            for i in 0..opts.workers.max(1) {
                let (slot, handle) = spawn_worker(&state, i)?;
                slots.push(slot);
                worker_handles.push(handle);
            }
        }
        let mut threads = Vec::with_capacity(3);
        {
            let state = Arc::clone(&state);
            threads.push(
                thread::Builder::new()
                    .name("serve-accept".into())
                    .spawn(move || accept_loop(&state, &listener))?,
            );
        }
        {
            let state = Arc::clone(&state);
            threads.push(
                thread::Builder::new()
                    .name("serve-supervisor".into())
                    .spawn(move || supervisor_loop(&state, worker_handles))?,
            );
        }
        {
            let state = Arc::clone(&state);
            threads.push(
                thread::Builder::new()
                    .name("serve-flusher".into())
                    .spawn(move || flusher_loop(&state))?,
            );
        }
        Ok(Server {
            state,
            addr,
            threads,
        })
    }

    /// The address the listener actually bound (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The cross-request artifact store every worker shares.
    #[must_use]
    pub fn artifacts(&self) -> &Arc<ArtifactStore> {
        &self.state.artifacts
    }

    /// The always-on flight recorder backing postmortem bundles.
    #[must_use]
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.state.recorder
    }

    /// Starts a graceful drain: stop accepting, run everything already
    /// queued, let workers exit. Idempotent.
    pub fn begin_shutdown(&self) {
        self.state.begin_shutdown();
    }

    /// Whether a shutdown (client command, [`Server::begin_shutdown`])
    /// has started.
    #[must_use]
    pub fn shutdown_started(&self) -> bool {
        self.state.shutdown.load(Ordering::Acquire)
    }

    /// Cancels every queued and in-flight job through the root
    /// [`StopHandle`] chain, then starts the drain. In-flight runs
    /// return `Inconclusive (cancelled)` to their clients.
    pub fn cancel_all(&self) {
        self.state.root_stop.request_stop();
        self.state.begin_shutdown();
    }

    /// Waits for the accept loop, the supervisor (which in turn joins
    /// every worker, including respawned ones) and the flusher. Returns
    /// once the queue has fully drained — and, for persistent stores,
    /// the final flush has run — after [`Server::begin_shutdown`].
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Spawns one worker thread and returns the supervisor's view of it.
fn spawn_worker(
    state: &Arc<ServerState>,
    index: usize,
) -> io::Result<(WorkerSlot, thread::JoinHandle<()>)> {
    let alive = Arc::new(AtomicBool::new(true));
    let inflight: Arc<Mutex<Option<InFlight>>> = Arc::new(Mutex::new(None));
    let slot = WorkerSlot {
        alive: Arc::clone(&alive),
        inflight: Arc::clone(&inflight),
    };
    let handle = thread::Builder::new()
        .name(format!("serve-worker-{index}"))
        .spawn({
            let state = Arc::clone(state);
            move || {
                let _guard = AliveGuard(alive);
                worker_loop(&state, index, &inflight);
            }
        })?;
    Ok((slot, handle))
}

/// Watches worker liveness: a dead worker's in-flight job is failed to
/// its client (`job.error`, never a silent drop) and the worker is
/// respawned unless the server is draining an empty queue. Exits once
/// shutdown has fully drained, then joins every worker it has ever
/// owned and runs the final flush.
fn supervisor_loop(state: &Arc<ServerState>, mut handles: Vec<thread::JoinHandle<()>>) {
    loop {
        thread::sleep(Duration::from_millis(20));
        let shutdown = state.shutdown.load(Ordering::Acquire);
        let queue_empty = lock(&state.queue).is_empty();
        let mut all_dead = true;
        // Jobs orphaned by dead workers; reported *after* the slots
        // lock is released, because write_postmortem snapshots health
        // (which takes the same lock).
        let mut orphaned = Vec::new();
        {
            let mut slots = lock(&state.slots);
            for (i, slot) in slots.iter_mut().enumerate() {
                if slot.alive.load(Ordering::Acquire) {
                    all_dead = false;
                    continue;
                }
                if let Some(job) = lock(&slot.inflight).take() {
                    // `done` may already be set if the worker died in
                    // the narrow window after reporting; swap so the
                    // client gets exactly one terminal event.
                    if !job.done.swap(true, Ordering::AcqRel) {
                        orphaned.push(job);
                    }
                }
                if shutdown && queue_empty {
                    // Normal drain exit; leave the slot dead.
                    continue;
                }
                // A spawn failure (resource exhaustion) leaves the
                // slot dead; it is retried on the next tick.
                if let Ok((fresh, handle)) = spawn_worker(state, i) {
                    *slot = fresh;
                    handles.push(handle);
                    all_dead = false;
                    metrics::global().counter("serve.workers.respawned").inc();
                }
            }
        }
        for job in orphaned {
            metrics::global().counter("serve.jobs.failed").inc();
            job.emitter.emit(
                "job.error",
                vec![
                    ("job", Json::num(job.id)),
                    ("exit_code", Json::num(2)),
                    ("case", Json::Str(job.case.clone())),
                    (
                        "message",
                        Json::Str("worker died while running this job; resubmit to retry".into()),
                    ),
                ],
            );
            write_postmortem(
                state,
                "worker-died",
                Some((job.id, &job.case)),
                Some(job.request),
                Some((2, "worker died while running this job".into())),
            );
        }
        if shutdown && queue_empty && all_dead {
            break;
        }
    }
    for h in handles {
        let _ = h.join();
    }
    // Flush-on-drain: after the last worker reported its last job,
    // nothing else will journal; make it all durable before `join`
    // returns.
    let _ = state.artifacts.flush();
    state.drained.store(true, Ordering::Release);
}

/// Persists journal records written mid-run (each obligation's verdict
/// is journaled as it completes, not only at job end) every
/// [`ServeOptions::flush_interval`], so a SIGKILL during a long run
/// loses at most one interval of finished obligations.
fn flusher_loop(state: &Arc<ServerState>) {
    while !state.drained.load(Ordering::Acquire) {
        let mut slept = Duration::ZERO;
        while slept < state.flush_interval && !state.drained.load(Ordering::Acquire) {
            let step = Duration::from_millis(20).min(state.flush_interval - slept);
            thread::sleep(step);
            slept += step;
        }
        let _ = state.artifacts.flush();
        // Advance the rolling-window aggregation on the same cadence:
        // one counter snapshot per flush interval is what the `stats`
        // command's windowed rates diff against.
        state.aggregator.tick(metrics::global());
    }
}

/// Decrements the live-connection count when a handler exits, however
/// it exits.
struct ConnGuard(Arc<ServerState>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.connections.fetch_sub(1, Ordering::AcqRel);
    }
}

fn accept_loop(state: &Arc<ServerState>, listener: &TcpListener) {
    loop {
        if state.shutdown.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                // Load shedding: past the connection cap, answer with a
                // structured rejection instead of queueing the socket.
                let active = state.connections.fetch_add(1, Ordering::AcqRel) + 1;
                if active > state.max_connections {
                    state.connections.fetch_sub(1, Ordering::AcqRel);
                    metrics::global().counter("serve.connections.shed").inc();
                    let emitter = Emitter {
                        stream: Arc::new(Mutex::new(stream)),
                        epoch: state.epoch,
                    };
                    emitter.emit(
                        "job.rejected",
                        vec![(
                            "reason",
                            Json::Str(format!(
                                "server overloaded ({} concurrent connections)",
                                state.max_connections
                            )),
                        )],
                    );
                    continue;
                }
                let conn_state = Arc::clone(state);
                // Handlers are detached: they exit when the client
                // closes its end (and cancel their job if it is still
                // running at that point).
                let spawned = thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || {
                        let guard = ConnGuard(Arc::clone(&conn_state));
                        let _ = handle_connection(&conn_state, stream);
                        drop(guard);
                    });
                if spawned.is_err() {
                    // The guard never ran; undo the reservation.
                    state.connections.fetch_sub(1, Ordering::AcqRel);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// One bounded protocol read.
enum LineRead {
    /// A complete line within the limit (possibly empty).
    Line,
    /// Clean end of stream.
    Eof,
    /// The line exceeded the limit; the connection should be shed.
    Oversized,
    /// Undecodable bytes or a transport error.
    Failed,
}

/// Reads one `\n`-terminated line, refusing to buffer more than `max`
/// bytes — a malicious client cannot balloon server memory.
fn read_bounded_line(reader: &mut BufReader<TcpStream>, line: &mut String, max: usize) -> LineRead {
    line.clear();
    // `take` caps this read at max+1 bytes: seeing max+1 without a
    // newline proves the line is oversized without buffering it.
    match reader.by_ref().take(max as u64 + 1).read_line(line) {
        Ok(0) => LineRead::Eof,
        Ok(n) if n > max && !line.ends_with('\n') => LineRead::Oversized,
        Ok(_) => LineRead::Line,
        Err(_) => LineRead::Failed,
    }
}

/// Reads commands off one connection. Returns on EOF, a rejected or
/// malformed command, or `shutdown`.
fn handle_connection(state: &Arc<ServerState>, stream: TcpStream) -> io::Result<()> {
    let writer = Arc::new(Mutex::new(stream.try_clone()?));
    let emitter = Emitter {
        stream: writer,
        epoch: state.epoch,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    // The one job this connection may own: its stop handle and done
    // flag, so EOF-with-job-in-flight cancels it (nobody is listening
    // for the result any more).
    let mut job: Option<(u64, StopHandle, Arc<AtomicBool>)> = None;
    let reject = |reason: String| {
        metrics::global().counter("serve.jobs.rejected").inc();
        emitter.emit("job.rejected", vec![("reason", Json::Str(reason))]);
    };
    loop {
        match read_bounded_line(&mut reader, &mut line, state.max_line_bytes) {
            LineRead::Line => {}
            LineRead::Eof | LineRead::Failed => break,
            LineRead::Oversized => {
                reject(format!(
                    "command line exceeds {} bytes",
                    state.max_line_bytes
                ));
                break;
            }
        }
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        let Ok(msg) = json::parse(text) else {
            reject("malformed JSON command".into());
            break;
        };
        match msg.get("cmd").and_then(Json::as_str) {
            Some("verify") => {
                if job.is_some() {
                    emitter.emit(
                        "protocol.error",
                        vec![("message", Json::Str("one verify per connection".into()))],
                    );
                    break;
                }
                match submit_job(state, &emitter, &msg) {
                    Ok(accepted) => job = Some(accepted),
                    // Rejected (queue full / draining / bad request):
                    // the reject event has been emitted; close.
                    Err(()) => break,
                }
            }
            Some("cancel") => {
                if let Some((id, stop, _)) = &job {
                    stop.request_stop();
                    metrics::global().counter("serve.jobs.cancelled").inc();
                    emitter.emit("job.cancel_requested", vec![("job", Json::num(*id))]);
                }
            }
            Some("ping") => emitter.emit("server.pong", vec![]),
            Some("health") => emitter.emit("server.health", state.health_args()),
            Some("stats") => emitter.emit("server.stats", state.stats_args()),
            Some("dump") => {
                let args = match write_postmortem(state, "manual-dump", None, None, None) {
                    Some(path) => vec![("path", Json::Str(path.display().to_string()))],
                    None => vec![(
                        "error",
                        Json::Str("postmortem bundles need --store-dir".into()),
                    )],
                };
                emitter.emit("server.dump", args);
            }
            Some("shutdown") => {
                state.begin_shutdown();
                emitter.emit("server.shutdown", vec![]);
                break;
            }
            Some(other) => {
                reject(format!("unknown command '{other}'"));
                break;
            }
            None => {
                reject("command must carry a string 'cmd' field".into());
                break;
            }
        }
    }
    // Client hung up. A job nobody is waiting for should not burn a
    // worker: cancel it if it has not completed.
    if let Some((_, stop, done)) = job {
        if !done.load(Ordering::Acquire) {
            stop.request_stop();
        }
    }
    Ok(())
}

/// Parses and enqueues a verify command; emits `job.queued` or
/// `job.rejected`.
fn submit_job(
    state: &Arc<ServerState>,
    emitter: &Emitter,
    msg: &Json,
) -> Result<(u64, StopHandle, Arc<AtomicBool>), ()> {
    let reject = |reason: String| {
        metrics::global().counter("serve.jobs.rejected").inc();
        emitter.emit("job.rejected", vec![("reason", Json::Str(reason))]);
        Err(())
    };
    let request = match msg.get("request") {
        Some(r) => match VerifyRequest::from_json(r) {
            Ok(req) => req,
            Err(e) => return reject(e),
        },
        None => return reject("verify needs a 'request' object".into()),
    };
    let id = state.job_seq.fetch_add(1, Ordering::Relaxed) + 1;
    let stop = state.root_stop.child();
    let done = Arc::new(AtomicBool::new(false));
    let case = request.case.clone();
    let job = Job {
        id,
        request,
        stop: stop.clone(),
        done: Arc::clone(&done),
        emitter: emitter.clone(),
        meter: Arc::new(JobMeter::new()),
        queued_at: Instant::now(),
    };
    let depth = {
        let mut q = lock(&state.queue);
        if state.shutdown.load(Ordering::Acquire) {
            drop(q);
            return reject("server is draining".into());
        }
        if q.len() >= state.queue_capacity {
            drop(q);
            return reject(format!("queue full ({} queued jobs)", state.queue_capacity));
        }
        q.push_back(job);
        q.len()
    };
    state.queue_cv.notify_one();
    metrics::global().counter("serve.jobs.accepted").inc();
    emitter.emit(
        "job.queued",
        vec![
            ("job", Json::num(id)),
            ("case", Json::Str(case)),
            ("queue_depth", Json::num(depth as u64)),
        ],
    );
    Ok((id, stop, done))
}

fn worker_loop(state: &Arc<ServerState>, worker: usize, inflight: &Mutex<Option<InFlight>>) {
    loop {
        let job = {
            let mut q = lock(&state.queue);
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                // Drain semantics: exit only once the queue is empty.
                if state.shutdown.load(Ordering::Acquire) {
                    return;
                }
                q = state
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        };
        run_job(state, worker, job, inflight);
    }
}

fn run_job(state: &Arc<ServerState>, worker: usize, job: Job, inflight: &Mutex<Option<InFlight>>) {
    // Register with the supervisor *before* anything can go wrong, so a
    // worker death at any later point fails this job instead of
    // dropping it.
    *lock(inflight) = Some(InFlight {
        id: job.id,
        case: job.request.case.clone(),
        emitter: job.emitter.clone(),
        done: Arc::clone(&job.done),
        request: job.request.to_json(),
    });
    job.meter.set_queue_wait(job.queued_at.elapsed());
    job.emitter.emit(
        "job.started",
        vec![
            ("job", Json::num(job.id)),
            ("case", Json::Str(job.request.case.clone())),
            ("worker", Json::num(worker as u64)),
        ],
    );
    if state
        .panic_on_case
        .as_deref()
        .is_some_and(|c| c == job.request.case)
    {
        panic!(
            "chaos: injected worker panic for case '{}'",
            job.request.case
        );
    }
    // Progress heartbeat: proof of life while the solver grinds, so a
    // client can distinguish "queued behind others" from "running".
    // Each beat carries the attribution-so-far off the shared meter.
    let beat = {
        let emitter = job.emitter.clone();
        let done = Arc::clone(&job.done);
        let meter = Arc::clone(&job.meter);
        let interval = state.heartbeat_interval;
        let id = job.id;
        let started = Instant::now();
        thread::spawn(move || loop {
            // Sleep in short steps so job completion is observed within
            // ~10ms — the heartbeat must never add latency to the job.
            let mut slept = Duration::ZERO;
            while slept < interval {
                let step = Duration::from_millis(10).min(interval - slept);
                thread::sleep(step);
                slept += step;
                if done.load(Ordering::Acquire) {
                    return;
                }
            }
            emitter.emit(
                "job.heartbeat",
                vec![
                    ("job", Json::num(id)),
                    (
                        "elapsed_ms",
                        Json::num(started.elapsed().as_millis() as u64),
                    ),
                    ("phase", Json::Str(meter.phase().as_str().into())),
                    ("conflicts", Json::num(meter.conflicts())),
                    ("obligations_done", Json::num(meter.obligations_done())),
                    ("obligations_total", Json::num(meter.obligations_total())),
                ],
            );
        })
    };
    let result =
        state
            .engine
            .verify_metered(&job.request, Some(&job.stop), Some(Arc::clone(&job.meter)));
    job.meter.set_phase(MeterPhase::Done);
    // `swap` so the supervisor and this worker agree on who reports the
    // terminal event if the worker dies in the reporting window.
    let already_reported = job.done.swap(true, Ordering::AcqRel);
    let _ = beat.join();
    if !already_reported {
        match result {
            Ok(outcome) => {
                metrics::global().counter("serve.jobs.completed").inc();
                let exit_code = outcome.exit_code() as u64;
                let verdict = verdict_line(&outcome.report);
                job.emitter.emit(
                    "job.done",
                    vec![
                        ("job", Json::num(job.id)),
                        ("exit_code", Json::num(exit_code)),
                        ("verdict", Json::Str(verdict.clone())),
                        ("cache_hits", Json::num(outcome.report.cache_hits)),
                        ("attribution", job.meter.to_json()),
                        ("report", outcome.report.to_json()),
                    ],
                );
                // Errored or degraded runs (obligation panic, unsound
                // witness, engine-level failure) leave a postmortem
                // bundle behind for offline triage.
                let errored = matches!(outcome.report.outcome, CheckOutcome::Errored { .. });
                if errored || outcome.report.degraded {
                    write_postmortem(
                        state,
                        "job-errored",
                        Some((job.id, &job.request.case)),
                        Some(job.request.to_json()),
                        Some((exit_code, verdict)),
                    );
                }
            }
            Err(e) => {
                metrics::global().counter("serve.jobs.failed").inc();
                job.emitter.emit(
                    "job.error",
                    vec![
                        ("job", Json::num(job.id)),
                        ("exit_code", Json::num(2)),
                        ("message", Json::Str(e.to_string())),
                    ],
                );
                write_postmortem(
                    state,
                    "engine-error",
                    Some((job.id, &job.request.case)),
                    Some(job.request.to_json()),
                    Some((2, format!("error: {e}"))),
                );
            }
        }
    }
    *lock(inflight) = None;
    // Per-job flush: the engine already flushed after the run; this
    // covers the rejected/errored paths and keeps the guarantee local.
    let _ = state.artifacts.flush();
}

/// The verdict line for a report, character-identical to what
/// `aqed verify` prints, so service and one-shot outputs diff clean
/// (modulo the timing parenthetical).
#[must_use]
pub fn verdict_line(report: &ParallelVerifyReport) -> String {
    match &report.outcome {
        CheckOutcome::Bug { counterexample, .. } => format!(
            "bug: {counterexample} ({:?}, {} clauses)",
            report.runtime, report.aggregate.clauses
        ),
        CheckOutcome::Clean { bound } => format!(
            "clean up to bound {bound} ({:?}, {} clauses)",
            report.runtime, report.aggregate.clauses
        ),
        CheckOutcome::Inconclusive { bound, reason } => {
            format!("inconclusive at bound {bound} ({reason})")
        }
        CheckOutcome::Errored { message } => format!("error: {message}"),
    }
}

/// What a client learned from one submitted job.
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// The run's exit taxonomy (0 clean, 1 bug, 2 inconclusive /
    /// errored / rejected).
    pub exit_code: i32,
    /// The CLI-identical verdict line (or `error: ...` for
    /// rejections/failures).
    pub verdict: String,
    /// The full report JSON from `job.done`, when the job ran.
    pub report: Option<Json>,
    /// True when the server refused to queue the job.
    pub rejected: bool,
}

/// Submits `req` and blocks until the job completes. See
/// [`submit_with`] for cancellation and event streaming, and
/// [`submit_retrying`] for resilience to daemon restarts.
///
/// # Errors
///
/// Propagates connection failures and protocol violations as
/// [`io::Error`].
pub fn submit(addr: impl ToSocketAddrs, req: &VerifyRequest) -> io::Result<SubmitOutcome> {
    submit_with(addr, req, None, |_| {})
}

/// Submits `req`, optionally sending a `cancel` after `cancel_after`,
/// invoking `on_event` for every event line the server streams, and
/// blocking until the job reaches a terminal event.
///
/// # Errors
///
/// Propagates connection failures; a server that closes the stream
/// before the job completes surfaces as [`io::ErrorKind::UnexpectedEof`].
pub fn submit_with(
    addr: impl ToSocketAddrs,
    req: &VerifyRequest,
    cancel_after: Option<Duration>,
    mut on_event: impl FnMut(&Json),
) -> io::Result<SubmitOutcome> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    let cmd = Json::obj(vec![
        ("cmd", Json::Str("verify".into())),
        ("request", req.to_json()),
    ]);
    writeln!(writer, "{cmd}")?;
    writer.flush()?;
    if let Some(delay) = cancel_after {
        let mut w = stream.try_clone()?;
        // Fire-and-forget: if the job finishes first the extra command
        // lands on a connection whose job is already done and the
        // server ignores it (or the write fails — equally fine).
        thread::spawn(move || {
            thread::sleep(delay);
            let _ = writeln!(w, r#"{{"cmd":"cancel"}}"#);
            let _ = w.flush();
        });
    }
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the stream before the job completed",
            ));
        }
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        let event = json::parse(text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed event from server: {e}"),
            )
        })?;
        on_event(&event);
        let args = event.get("args");
        let arg = |k: &str| args.and_then(|a| a.get(k));
        match event.get("name").and_then(Json::as_str) {
            Some("job.done") => {
                return Ok(SubmitOutcome {
                    exit_code: arg("exit_code").and_then(Json::as_u64).unwrap_or(2) as i32,
                    verdict: arg("verdict")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    report: arg("report").cloned(),
                    rejected: false,
                });
            }
            Some("job.error") => {
                let message = arg("message")
                    .and_then(Json::as_str)
                    .unwrap_or("job failed");
                return Ok(SubmitOutcome {
                    exit_code: 2,
                    verdict: format!("error: {message}"),
                    report: None,
                    rejected: false,
                });
            }
            Some("job.rejected") => {
                let reason = arg("reason").and_then(Json::as_str).unwrap_or("rejected");
                return Ok(SubmitOutcome {
                    exit_code: 2,
                    verdict: format!("error: {reason}"),
                    report: None,
                    rejected: true,
                });
            }
            Some("protocol.error") => {
                let message = arg("message").and_then(Json::as_str).unwrap_or("protocol");
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    message.to_string(),
                ));
            }
            _ => {}
        }
    }
}

/// Whether this failure is worth retrying: the daemon may be
/// restarting (refused/reset), mid-crash (EOF before a terminal event,
/// a worker-death `job.error`) or briefly saturated.
fn transient_io(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::TimedOut
            | io::ErrorKind::NotConnected
    )
}

fn transient_outcome(outcome: &SubmitOutcome) -> bool {
    if outcome.rejected {
        // Saturation and drain rejections clear with time; malformed
        // requests never do.
        let v = &outcome.verdict;
        return v.contains("queue full") || v.contains("draining") || v.contains("overloaded");
    }
    outcome.verdict.contains("worker died")
}

/// Small deterministic-enough jitter so a fleet of retrying clients
/// does not thunder back in lockstep. Not cryptographic; wall-clock
/// nanoseconds are plenty of spread.
fn jitter_ms(cap: u64) -> u64 {
    if cap == 0 {
        return 0;
    }
    let nanos = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.subsec_nanos());
    u64::from(nanos) % cap
}

/// [`submit`] with resilience: transient failures — connection refused
/// or reset while the daemon restarts, a stream cut mid-job by a crash,
/// a saturated queue, a died worker — are retried up to `retries` times
/// with exponential backoff plus jitter. Re-submitting is **idempotent
/// by construction**: results are keyed by the design's content hash in
/// the artifact store, so a retry of work the daemon already finished
/// (or recovered from disk) is answered from the store, not re-solved.
///
/// `on_event` sees every server event of every attempt, plus a
/// synthetic `client.retry` event (same JSONL shape) before each
/// re-attempt.
///
/// # Errors
///
/// Returns the final attempt's error once retries are exhausted;
/// non-transient errors (unknown case, malformed request, protocol
/// violations) fail immediately.
pub fn submit_retrying(
    addr: impl ToSocketAddrs + Copy,
    req: &VerifyRequest,
    retries: u32,
    base_backoff: Duration,
    mut on_event: impl FnMut(&Json),
) -> io::Result<SubmitOutcome> {
    let mut attempt = 0u32;
    loop {
        let result = submit_with(addr, req, None, &mut on_event);
        let (retry, describe) = match &result {
            Ok(outcome) => (transient_outcome(outcome), outcome.verdict.clone()),
            Err(e) => (transient_io(e), e.to_string()),
        };
        if !retry || attempt >= retries {
            return result;
        }
        attempt += 1;
        // Exponential backoff, capped at 64x base, plus up to half a
        // step of jitter.
        let base_ms = base_backoff.as_millis() as u64;
        let step = base_ms.saturating_mul(1 << attempt.min(6));
        let delay = Duration::from_millis(step + jitter_ms(step / 2 + 1));
        metrics::global().counter("client.retries").inc();
        on_event(&Json::obj(vec![
            ("name", Json::Str("client.retry".into())),
            (
                "args",
                Json::obj(vec![
                    ("attempt", Json::num(u64::from(attempt))),
                    ("delay_ms", Json::num(delay.as_millis() as u64)),
                    ("cause", Json::Str(describe)),
                ]),
            ),
        ]));
        thread::sleep(delay);
    }
}

/// Asks the daemon at `addr` for a health snapshot: queue depth, worker
/// liveness, connection count and artifact-store statistics (including
/// `recovered`/`truncated` from the last store open).
///
/// # Errors
///
/// Propagates connection failures; a non-health reply surfaces as
/// [`io::ErrorKind::InvalidData`].
pub fn query_health(addr: impl ToSocketAddrs) -> io::Result<Json> {
    query_event(addr, r#"{"cmd":"health"}"#, "server.health")
}

/// Asks the daemon at `addr` for its observability snapshot: Prometheus
/// exposition text, the structured metrics/rates JSON, and flight
/// recorder occupancy.
///
/// # Errors
///
/// Propagates connection failures; a non-stats reply surfaces as
/// [`io::ErrorKind::InvalidData`].
pub fn query_stats(addr: impl ToSocketAddrs) -> io::Result<Json> {
    query_event(addr, r#"{"cmd":"stats"}"#, "server.stats")
}

/// Asks the daemon at `addr` to write an on-demand postmortem bundle
/// and returns the `server.dump` reply (`path` on success, `error`
/// when the daemon has no `--store-dir`).
///
/// # Errors
///
/// Propagates connection failures; a non-dump reply surfaces as
/// [`io::ErrorKind::InvalidData`].
pub fn request_dump(addr: impl ToSocketAddrs) -> io::Result<Json> {
    query_event(addr, r#"{"cmd":"dump"}"#, "server.dump")
}

/// One-shot request/reply helper: connects, sends `cmd` as a JSONL
/// line, and returns the `args` of the first event iff its name is
/// `expected`.
fn query_event(addr: impl ToSocketAddrs, cmd: &str, expected: &str) -> io::Result<Json> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    writeln!(writer, "{cmd}")?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("server closed the stream before answering {expected}"),
        ));
    }
    let event = json::parse(line.trim())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("malformed event: {e}")))?;
    if event.get("name").and_then(Json::as_str) != Some(expected) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected {expected}, got: {event}"),
        ));
    }
    Ok(event.get("args").cloned().unwrap_or(Json::Null))
}

/// Asks the daemon at `addr` to drain and exit.
///
/// # Errors
///
/// Propagates connection failures.
pub fn request_shutdown(addr: impl ToSocketAddrs) -> io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    writeln!(writer, r#"{{"cmd":"shutdown"}}"#)?;
    writer.flush()?;
    // Wait for the acknowledgement (or EOF) so callers can race-freely
    // observe that the drain has started.
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let _ = reader.read_line(&mut line);
    Ok(())
}

/// Whether a daemon answers at `addr`.
#[must_use]
pub fn ping(addr: impl ToSocketAddrs) -> bool {
    let Ok(stream) = TcpStream::connect(addr) else {
        return false;
    };
    let Ok(mut writer) = stream.try_clone() else {
        return false;
    };
    if writeln!(writer, r#"{{"cmd":"ping"}}"#).is_err() || writer.flush().is_err() {
        return false;
    }
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    matches!(reader.read_line(&mut line), Ok(n) if n > 0 && line.contains("server.pong"))
}
