//! `aqed-serve`: a long-lived verification daemon over [`aqed_engine`].
//!
//! The engine made a verification run a value ([`VerifyRequest`] in,
//! outcome out); this crate makes it a *service*: a TCP listener feeds a
//! bounded job queue drained by a persistent worker pool, every worker
//! drives the same [`Engine`] so the cross-request
//! [`aqed_core::ArtifactStore`] stays warm, and each
//! connection streams its job's lifecycle as JSON-lines events.
//!
//! # Wire protocol
//!
//! One JSON object per line in both directions. The client speaks
//! commands:
//!
//! ```text
//! {"cmd":"verify","request":{"case":"aes_v1","bound":12,...}}
//! {"cmd":"cancel"}          cancel this connection's job
//! {"cmd":"ping"}            liveness probe
//! {"cmd":"shutdown"}        drain the queue and stop the daemon
//! ```
//!
//! The server answers with *events* in exactly the shape the
//! observability JSONL sink writes (`{"ts":..,"tid":..,"ph":"I",
//! "name":..,"args":{..}}`, see `aqed-obs`), so the existing
//! `trace_report` tooling can digest a captured session stream
//! unchanged. Lifecycle names: `job.queued`, `job.started`,
//! `job.heartbeat`, `job.cancel_requested`, `job.done`, `job.error`,
//! `job.rejected`, `server.pong`, `server.shutdown`,
//! `protocol.error`. A `job.done` event carries the exit code, the
//! CLI-identical verdict line and the full report JSON.
//!
//! # Cancellation and drain
//!
//! Every job gets a [`StopHandle`] chained off the server root; a
//! client `cancel` (or dropping the connection mid-flight) trips the
//! job's handle and the run drains through the ordinary
//! `Inconclusive {reason: Cancelled}` taxonomy — exit code 2, same as
//! Ctrl-C on the one-shot CLI. Shutdown is graceful: the listener stops
//! accepting, queued jobs still run, workers exit when the queue is
//! empty, and [`Server::join`] returns once they have.

use aqed_core::{ArtifactStore, CheckOutcome, ParallelVerifyReport};
use aqed_engine::{Engine, VerifyRequest};
use aqed_obs::json::{self, Json};
use aqed_obs::metrics;
use aqed_sat::StopHandle;
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// How a [`Server`] is configured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOptions {
    /// Address to listen on. Port 0 picks an ephemeral port; read the
    /// bound address back from [`Server::addr`].
    pub addr: String,
    /// Persistent worker threads draining the job queue. Each runs one
    /// job at a time through the shared engine.
    pub workers: usize,
    /// Maximum number of *queued* (not yet started) jobs before new
    /// submissions are rejected with `job.rejected`.
    pub queue_capacity: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 16,
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Writes JSONL events for one connection. Cloned freely: the worker,
/// the heartbeat thread and the connection handler all emit through the
/// same shared stream.
#[derive(Debug, Clone)]
struct Emitter {
    stream: Arc<Mutex<TcpStream>>,
    epoch: Instant,
}

impl Emitter {
    fn emit(&self, name: &str, args: Vec<(&'static str, Json)>) {
        let event = Json::obj(vec![
            ("ts", Json::num(self.epoch.elapsed().as_nanos() as u64)),
            ("tid", Json::num(0)),
            ("ph", Json::Str("I".into())),
            ("name", Json::Str(name.into())),
            ("args", Json::obj(args)),
        ]);
        let mut s = lock(&self.stream);
        // A dead client is not the server's problem: the job still runs
        // to completion (or cancellation via the EOF path) and the event
        // is simply dropped.
        let _ = writeln!(&mut *s, "{event}");
        let _ = s.flush();
    }
}

/// One queued verification job.
struct Job {
    id: u64,
    request: VerifyRequest,
    stop: StopHandle,
    done: Arc<AtomicBool>,
    emitter: Emitter,
}

struct ServerState {
    engine: Engine,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    queue_capacity: usize,
    shutdown: AtomicBool,
    job_seq: AtomicU64,
    root_stop: StopHandle,
    epoch: Instant,
}

impl ServerState {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.queue_cv.notify_all();
    }
}

/// A running verification daemon. Construct with [`Server::start`];
/// stop with [`Server::begin_shutdown`] (or a client `shutdown`
/// command) followed by [`Server::join`].
pub struct Server {
    state: Arc<ServerState>,
    addr: SocketAddr,
    threads: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listener, spawns the accept loop and the worker pool,
    /// and returns immediately.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure if the address is unavailable.
    pub fn start(opts: &ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let state = Arc::new(ServerState {
            engine: Engine::with_artifacts(Arc::new(ArtifactStore::new())),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            queue_capacity: opts.queue_capacity.max(1),
            shutdown: AtomicBool::new(false),
            job_seq: AtomicU64::new(0),
            root_stop: StopHandle::new(),
            epoch: Instant::now(),
        });
        let mut threads = Vec::with_capacity(opts.workers.max(1) + 1);
        {
            let state = Arc::clone(&state);
            threads.push(
                thread::Builder::new()
                    .name("serve-accept".into())
                    .spawn(move || accept_loop(&state, &listener))
                    .expect("spawn accept loop"),
            );
        }
        for i in 0..opts.workers.max(1) {
            let state = Arc::clone(&state);
            threads.push(
                thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&state, i))
                    .expect("spawn worker"),
            );
        }
        Ok(Server {
            state,
            addr,
            threads,
        })
    }

    /// The address the listener actually bound (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The cross-request artifact store every worker shares.
    #[must_use]
    pub fn artifacts(&self) -> &Arc<ArtifactStore> {
        self.state
            .engine
            .artifacts()
            .expect("server engine always carries a store")
    }

    /// Starts a graceful drain: stop accepting, run everything already
    /// queued, let workers exit. Idempotent.
    pub fn begin_shutdown(&self) {
        self.state.begin_shutdown();
    }

    /// Whether a shutdown (client command, [`Server::begin_shutdown`])
    /// has started.
    #[must_use]
    pub fn shutdown_started(&self) -> bool {
        self.state.shutdown.load(Ordering::Acquire)
    }

    /// Cancels every queued and in-flight job through the root
    /// [`StopHandle`] chain, then starts the drain. In-flight runs
    /// return `Inconclusive (cancelled)` to their clients.
    pub fn cancel_all(&self) {
        self.state.root_stop.request_stop();
        self.state.begin_shutdown();
    }

    /// Waits for the accept loop and every worker to exit. Returns once
    /// the queue has fully drained after [`Server::begin_shutdown`].
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

fn accept_loop(state: &Arc<ServerState>, listener: &TcpListener) {
    loop {
        if state.shutdown.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let state = Arc::clone(state);
                // Handlers are detached: they exit when the client
                // closes its end (and cancel their job if it is still
                // running at that point).
                let _ = thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || {
                        let _ = handle_connection(&state, stream);
                    });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Reads commands off one connection. Returns on EOF, protocol error or
/// `shutdown`.
fn handle_connection(state: &Arc<ServerState>, stream: TcpStream) -> io::Result<()> {
    let writer = Arc::new(Mutex::new(stream.try_clone()?));
    let emitter = Emitter {
        stream: writer,
        epoch: state.epoch,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    // The one job this connection may own: its stop handle and done
    // flag, so EOF-with-job-in-flight cancels it (nobody is listening
    // for the result any more).
    let mut job: Option<(u64, StopHandle, Arc<AtomicBool>)> = None;
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        let Ok(msg) = json::parse(text) else {
            emitter.emit(
                "protocol.error",
                vec![("message", Json::Str("malformed JSON command".into()))],
            );
            break;
        };
        match msg.get("cmd").and_then(Json::as_str) {
            Some("verify") => {
                if job.is_some() {
                    emitter.emit(
                        "protocol.error",
                        vec![("message", Json::Str("one verify per connection".into()))],
                    );
                    break;
                }
                match submit_job(state, &emitter, &msg) {
                    Ok(accepted) => job = Some(accepted),
                    // Rejected (queue full / draining / bad request):
                    // the reject event has been emitted; close.
                    Err(()) => break,
                }
            }
            Some("cancel") => {
                if let Some((id, stop, _)) = &job {
                    stop.request_stop();
                    metrics::global().counter("serve.jobs.cancelled").inc();
                    emitter.emit("job.cancel_requested", vec![("job", Json::num(*id))]);
                }
            }
            Some("ping") => emitter.emit("server.pong", vec![]),
            Some("shutdown") => {
                state.begin_shutdown();
                emitter.emit("server.shutdown", vec![]);
                break;
            }
            _ => {
                emitter.emit(
                    "protocol.error",
                    vec![("message", Json::Str("unknown command".into()))],
                );
                break;
            }
        }
    }
    // Client hung up. A job nobody is waiting for should not burn a
    // worker: cancel it if it has not completed.
    if let Some((_, stop, done)) = job {
        if !done.load(Ordering::Acquire) {
            stop.request_stop();
        }
    }
    Ok(())
}

/// Parses and enqueues a verify command; emits `job.queued` or
/// `job.rejected`.
fn submit_job(
    state: &Arc<ServerState>,
    emitter: &Emitter,
    msg: &Json,
) -> Result<(u64, StopHandle, Arc<AtomicBool>), ()> {
    let reject = |reason: String| {
        metrics::global().counter("serve.jobs.rejected").inc();
        emitter.emit("job.rejected", vec![("reason", Json::Str(reason))]);
        Err(())
    };
    let request = match msg.get("request") {
        Some(r) => match VerifyRequest::from_json(r) {
            Ok(req) => req,
            Err(e) => return reject(e),
        },
        None => return reject("verify needs a 'request' object".into()),
    };
    let id = state.job_seq.fetch_add(1, Ordering::Relaxed) + 1;
    let stop = state.root_stop.child();
    let done = Arc::new(AtomicBool::new(false));
    let case = request.case.clone();
    let job = Job {
        id,
        request,
        stop: stop.clone(),
        done: Arc::clone(&done),
        emitter: emitter.clone(),
    };
    let depth = {
        let mut q = lock(&state.queue);
        if state.shutdown.load(Ordering::Acquire) {
            drop(q);
            return reject("server is draining".into());
        }
        if q.len() >= state.queue_capacity {
            drop(q);
            return reject(format!("queue full ({} queued jobs)", state.queue_capacity));
        }
        q.push_back(job);
        q.len()
    };
    state.queue_cv.notify_one();
    metrics::global().counter("serve.jobs.accepted").inc();
    emitter.emit(
        "job.queued",
        vec![
            ("job", Json::num(id)),
            ("case", Json::Str(case)),
            ("queue_depth", Json::num(depth as u64)),
        ],
    );
    Ok((id, stop, done))
}

fn worker_loop(state: &Arc<ServerState>, worker: usize) {
    loop {
        let job = {
            let mut q = lock(&state.queue);
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                // Drain semantics: exit only once the queue is empty.
                if state.shutdown.load(Ordering::Acquire) {
                    return;
                }
                q = state
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        };
        run_job(state, worker, job);
    }
}

fn run_job(state: &Arc<ServerState>, worker: usize, job: Job) {
    job.emitter.emit(
        "job.started",
        vec![
            ("job", Json::num(job.id)),
            ("case", Json::Str(job.request.case.clone())),
            ("worker", Json::num(worker as u64)),
        ],
    );
    // Progress heartbeat: proof of life while the solver grinds, so a
    // client can distinguish "queued behind others" from "running".
    let beat = {
        let emitter = job.emitter.clone();
        let done = Arc::clone(&job.done);
        let id = job.id;
        let started = Instant::now();
        thread::spawn(move || loop {
            // Sleep in short steps so job completion is observed within
            // ~10ms — the heartbeat must never add latency to the job.
            for _ in 0..100 {
                thread::sleep(Duration::from_millis(10));
                if done.load(Ordering::Acquire) {
                    return;
                }
            }
            emitter.emit(
                "job.heartbeat",
                vec![
                    ("job", Json::num(id)),
                    (
                        "elapsed_ms",
                        Json::num(started.elapsed().as_millis() as u64),
                    ),
                ],
            );
        })
    };
    let result = state.engine.verify_cancellable(&job.request, &job.stop);
    job.done.store(true, Ordering::Release);
    let _ = beat.join();
    match result {
        Ok(outcome) => {
            metrics::global().counter("serve.jobs.completed").inc();
            job.emitter.emit(
                "job.done",
                vec![
                    ("job", Json::num(job.id)),
                    ("exit_code", Json::num(outcome.exit_code() as u64)),
                    ("verdict", Json::Str(verdict_line(&outcome.report))),
                    ("cache_hits", Json::num(outcome.report.cache_hits)),
                    ("report", outcome.report.to_json()),
                ],
            );
        }
        Err(e) => {
            metrics::global().counter("serve.jobs.failed").inc();
            job.emitter.emit(
                "job.error",
                vec![
                    ("job", Json::num(job.id)),
                    ("exit_code", Json::num(2)),
                    ("message", Json::Str(e.to_string())),
                ],
            );
        }
    }
}

/// The verdict line for a report, character-identical to what
/// `aqed verify` prints, so service and one-shot outputs diff clean
/// (modulo the timing parenthetical).
#[must_use]
pub fn verdict_line(report: &ParallelVerifyReport) -> String {
    match &report.outcome {
        CheckOutcome::Bug { counterexample, .. } => format!(
            "bug: {counterexample} ({:?}, {} clauses)",
            report.runtime, report.aggregate.clauses
        ),
        CheckOutcome::Clean { bound } => format!(
            "clean up to bound {bound} ({:?}, {} clauses)",
            report.runtime, report.aggregate.clauses
        ),
        CheckOutcome::Inconclusive { bound, reason } => {
            format!("inconclusive at bound {bound} ({reason})")
        }
        CheckOutcome::Errored { message } => format!("error: {message}"),
    }
}

/// What a client learned from one submitted job.
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// The run's exit taxonomy (0 clean, 1 bug, 2 inconclusive /
    /// errored / rejected).
    pub exit_code: i32,
    /// The CLI-identical verdict line (or `error: ...` for
    /// rejections/failures).
    pub verdict: String,
    /// The full report JSON from `job.done`, when the job ran.
    pub report: Option<Json>,
    /// True when the server refused to queue the job.
    pub rejected: bool,
}

/// Submits `req` and blocks until the job completes. See
/// [`submit_with`] for cancellation and event streaming.
///
/// # Errors
///
/// Propagates connection failures and protocol violations as
/// [`io::Error`].
pub fn submit(addr: impl ToSocketAddrs, req: &VerifyRequest) -> io::Result<SubmitOutcome> {
    submit_with(addr, req, None, |_| {})
}

/// Submits `req`, optionally sending a `cancel` after `cancel_after`,
/// invoking `on_event` for every event line the server streams, and
/// blocking until the job reaches a terminal event.
///
/// # Errors
///
/// Propagates connection failures; a server that closes the stream
/// before the job completes surfaces as [`io::ErrorKind::UnexpectedEof`].
pub fn submit_with(
    addr: impl ToSocketAddrs,
    req: &VerifyRequest,
    cancel_after: Option<Duration>,
    mut on_event: impl FnMut(&Json),
) -> io::Result<SubmitOutcome> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    let cmd = Json::obj(vec![
        ("cmd", Json::Str("verify".into())),
        ("request", req.to_json()),
    ]);
    writeln!(writer, "{cmd}")?;
    writer.flush()?;
    if let Some(delay) = cancel_after {
        let mut w = stream.try_clone()?;
        // Fire-and-forget: if the job finishes first the extra command
        // lands on a connection whose job is already done and the
        // server ignores it (or the write fails — equally fine).
        thread::spawn(move || {
            thread::sleep(delay);
            let _ = writeln!(w, r#"{{"cmd":"cancel"}}"#);
            let _ = w.flush();
        });
    }
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the stream before the job completed",
            ));
        }
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        let event = json::parse(text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed event from server: {e}"),
            )
        })?;
        on_event(&event);
        let args = event.get("args");
        let arg = |k: &str| args.and_then(|a| a.get(k));
        match event.get("name").and_then(Json::as_str) {
            Some("job.done") => {
                return Ok(SubmitOutcome {
                    exit_code: arg("exit_code").and_then(Json::as_u64).unwrap_or(2) as i32,
                    verdict: arg("verdict")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    report: arg("report").cloned(),
                    rejected: false,
                });
            }
            Some("job.error") => {
                let message = arg("message")
                    .and_then(Json::as_str)
                    .unwrap_or("job failed");
                return Ok(SubmitOutcome {
                    exit_code: 2,
                    verdict: format!("error: {message}"),
                    report: None,
                    rejected: false,
                });
            }
            Some("job.rejected") => {
                let reason = arg("reason").and_then(Json::as_str).unwrap_or("rejected");
                return Ok(SubmitOutcome {
                    exit_code: 2,
                    verdict: format!("error: {reason}"),
                    report: None,
                    rejected: true,
                });
            }
            Some("protocol.error") => {
                let message = arg("message").and_then(Json::as_str).unwrap_or("protocol");
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    message.to_string(),
                ));
            }
            _ => {}
        }
    }
}

/// Asks the daemon at `addr` to drain and exit.
///
/// # Errors
///
/// Propagates connection failures.
pub fn request_shutdown(addr: impl ToSocketAddrs) -> io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    writeln!(writer, r#"{{"cmd":"shutdown"}}"#)?;
    writer.flush()?;
    // Wait for the acknowledgement (or EOF) so callers can race-freely
    // observe that the drain has started.
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let _ = reader.read_line(&mut line);
    Ok(())
}

/// Whether a daemon answers at `addr`.
#[must_use]
pub fn ping(addr: impl ToSocketAddrs) -> bool {
    let Ok(stream) = TcpStream::connect(addr) else {
        return false;
    };
    let Ok(mut writer) = stream.try_clone() else {
        return false;
    };
    if writeln!(writer, r#"{{"cmd":"ping"}}"#).is_err() || writer.flush().is_err() {
        return false;
    }
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    matches!(reader.read_line(&mut line), Ok(n) if n > 0 && line.contains("server.pong"))
}
