//! Human-readable rendering of expressions for diagnostics and
//! counterexample reports.

use crate::{BinOp, ExprPool, ExprRef, Node, UnOp};
use std::fmt;

/// Adapter that renders an expression as an S-expression via `Display`.
///
/// Obtained from [`ExprPool::display`].
///
/// # Examples
///
/// ```
/// use aqed_expr::{ExprPool, VarKind};
///
/// let mut p = ExprPool::new();
/// let x = p.var("x", 8, VarKind::Input);
/// let xe = p.var_expr(x);
/// let one = p.lit(8, 1);
/// let e = p.add(xe, one);
/// assert_eq!(p.display(e).to_string(), "(add x 8'd1)");
/// ```
#[derive(Debug)]
pub struct DisplayExpr<'a> {
    pool: &'a ExprPool,
    root: ExprRef,
}

impl ExprPool {
    /// Returns a displayable S-expression view of `e`.
    #[must_use]
    pub fn display(&self, e: ExprRef) -> DisplayExpr<'_> {
        DisplayExpr {
            pool: self,
            root: e,
        }
    }
}

fn op_name(op: BinOp) -> &'static str {
    match op {
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Xor => "xor",
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Udiv => "udiv",
        BinOp::Urem => "urem",
        BinOp::Shl => "shl",
        BinOp::Lshr => "lshr",
        BinOp::Ashr => "ashr",
        BinOp::Eq => "eq",
        BinOp::Ult => "ult",
        BinOp::Ule => "ule",
        BinOp::Slt => "slt",
        BinOp::Sle => "sle",
        BinOp::Concat => "concat",
    }
}

fn unop_name(op: UnOp) -> &'static str {
    match op {
        UnOp::Not => "not",
        UnOp::Neg => "neg",
        UnOp::RedOr => "redor",
        UnOp::RedAnd => "redand",
        UnOp::RedXor => "redxor",
    }
}

impl fmt::Display for DisplayExpr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Iterative rendering with an instruction stack (mixed node /
        // literal-text items) so deep DAGs do not overflow the call stack.
        enum Item {
            Node(ExprRef),
            Text(&'static str),
        }
        let mut stack = vec![Item::Node(self.root)];
        while let Some(item) = stack.pop() {
            match item {
                Item::Text(t) => f.write_str(t)?,
                Item::Node(e) => match *self.pool.node(e) {
                    Node::Const(v) => write!(f, "{v}")?,
                    Node::Var(v) => f.write_str(self.pool.var_name(v))?,
                    Node::Unary(op, a) => {
                        write!(f, "({} ", unop_name(op))?;
                        stack.push(Item::Text(")"));
                        stack.push(Item::Node(a));
                    }
                    Node::Binary(op, a, b) => {
                        write!(f, "({} ", op_name(op))?;
                        stack.push(Item::Text(")"));
                        stack.push(Item::Node(b));
                        stack.push(Item::Text(" "));
                        stack.push(Item::Node(a));
                    }
                    Node::Ite { cond, then_, else_ } => {
                        f.write_str("(ite ")?;
                        stack.push(Item::Text(")"));
                        stack.push(Item::Node(else_));
                        stack.push(Item::Text(" "));
                        stack.push(Item::Node(then_));
                        stack.push(Item::Text(" "));
                        stack.push(Item::Node(cond));
                    }
                    Node::Extract { hi, lo, arg } => {
                        write!(f, "(extract {hi} {lo} ")?;
                        stack.push(Item::Text(")"));
                        stack.push(Item::Node(arg));
                    }
                    Node::Extend { signed, width, arg } => {
                        write!(f, "({} {width} ", if signed { "sext" } else { "zext" })?;
                        stack.push(Item::Text(")"));
                        stack.push(Item::Node(arg));
                    }
                },
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::{ExprPool, VarKind};

    #[test]
    fn renders_sexpr() {
        let mut p = ExprPool::new();
        let a = p.var("a", 8, VarKind::Input);
        let b = p.var("b", 8, VarKind::Input);
        let c = p.var("sel", 1, VarKind::Input);
        let ae = p.var_expr(a);
        let be = p.var_expr(b);
        let ce = p.var_expr(c);
        let sum = p.add(ae, be);
        let pick = p.ite(ce, sum, ae);
        let s = p.display(pick).to_string();
        assert_eq!(s, "(ite sel (add a b) a)");
    }

    #[test]
    fn renders_slices_and_extends() {
        let mut p = ExprPool::new();
        let x = p.var("x", 16, VarKind::Input);
        let xe = p.var_expr(x);
        let lo = p.extract(xe, 7, 0);
        let z = p.zext(lo, 12);
        assert_eq!(p.display(z).to_string(), "(zext 12 (extract 7 0 x))");
        let n = p.not(xe);
        assert_eq!(p.display(n).to_string(), "(not x)");
    }
}
