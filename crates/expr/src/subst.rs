//! Variable substitution — the primitive the BMC unroller is built on.
//!
//! [`ExprPool::substitute`] rewrites an expression, replacing variables
//! according to a map while preserving (and re-running) the pool's local
//! simplifications. Like evaluation, it is iterative and memoized.

use crate::{ExprPool, ExprRef, Node, VarId};
use std::collections::HashMap;

impl ExprPool {
    /// Returns `root` with every variable `v` in `map` replaced by
    /// `map[v]`; variables not in the map are left symbolic.
    ///
    /// Replacement expressions must have the same width as the variable
    /// they replace. Because the result is rebuilt through the pool's
    /// constructors, constant folding applies: substituting constants for
    /// all variables fully evaluates the expression.
    ///
    /// # Panics
    ///
    /// Panics if a replacement's width differs from its variable's width.
    ///
    /// # Examples
    ///
    /// ```
    /// use aqed_expr::{ExprPool, VarKind};
    /// use std::collections::HashMap;
    ///
    /// let mut p = ExprPool::new();
    /// let x = p.var("x", 8, VarKind::State);
    /// let xe = p.var_expr(x);
    /// let one = p.lit(8, 1);
    /// let next = p.add(xe, one); // x + 1
    /// let five = p.lit(8, 5);
    /// let map = HashMap::from([(x, five)]);
    /// let result = p.substitute(next, &map);
    /// assert_eq!(p.as_const(result), Some(aqed_bitvec::Bv::new(8, 6)));
    /// ```
    pub fn substitute(&mut self, root: ExprRef, map: &HashMap<VarId, ExprRef>) -> ExprRef {
        let mut memo: HashMap<ExprRef, ExprRef> = HashMap::new();
        self.substitute_memo(root, map, &mut memo)
    }

    /// Substitutes several roots under one map, sharing the rewrite memo
    /// across them. This is what the BMC unroller calls once per frame.
    pub fn substitute_all(
        &mut self,
        roots: &[ExprRef],
        map: &HashMap<VarId, ExprRef>,
    ) -> Vec<ExprRef> {
        let mut memo: HashMap<ExprRef, ExprRef> = HashMap::new();
        roots
            .iter()
            .map(|&r| self.substitute_memo(r, map, &mut memo))
            .collect()
    }

    fn substitute_memo(
        &mut self,
        root: ExprRef,
        map: &HashMap<VarId, ExprRef>,
        memo: &mut HashMap<ExprRef, ExprRef>,
    ) -> ExprRef {
        if let Some(&r) = memo.get(&root) {
            return r;
        }
        let mut stack = vec![root];
        while let Some(&e) = stack.last() {
            if memo.contains_key(&e) {
                stack.pop();
                continue;
            }
            let node = self.node(e).clone();
            let mut pending = false;
            let need = |c: ExprRef, stack: &mut Vec<ExprRef>, pending: &mut bool| {
                if !memo.contains_key(&c) {
                    stack.push(c);
                    *pending = true;
                }
            };
            let rebuilt = match node {
                Node::Const(_) => Some(e),
                Node::Var(v) => Some(match map.get(&v) {
                    Some(&rep) => {
                        assert!(
                            self.width(rep) == self.var_width(v),
                            "substitution width mismatch for variable '{}': {} vs {}",
                            self.var_name(v),
                            self.width(rep),
                            self.var_width(v)
                        );
                        rep
                    }
                    None => e,
                }),
                Node::Unary(op, a) => {
                    need(a, &mut stack, &mut pending);
                    if pending {
                        None
                    } else {
                        let na = memo[&a];
                        Some(self.unary(op, na))
                    }
                }
                Node::Binary(op, a, b) => {
                    need(a, &mut stack, &mut pending);
                    need(b, &mut stack, &mut pending);
                    if pending {
                        None
                    } else {
                        let na = memo[&a];
                        let nb = memo[&b];
                        Some(self.binary(op, na, nb))
                    }
                }
                Node::Ite { cond, then_, else_ } => {
                    need(cond, &mut stack, &mut pending);
                    need(then_, &mut stack, &mut pending);
                    need(else_, &mut stack, &mut pending);
                    if pending {
                        None
                    } else {
                        let nc = memo[&cond];
                        let nt = memo[&then_];
                        let ne = memo[&else_];
                        Some(self.ite(nc, nt, ne))
                    }
                }
                Node::Extract { hi, lo, arg } => {
                    need(arg, &mut stack, &mut pending);
                    if pending {
                        None
                    } else {
                        let na = memo[&arg];
                        Some(self.extract(na, hi, lo))
                    }
                }
                Node::Extend { signed, width, arg } => {
                    need(arg, &mut stack, &mut pending);
                    if pending {
                        None
                    } else {
                        let na = memo[&arg];
                        Some(if signed {
                            self.sext(na, width)
                        } else {
                            self.zext(na, width)
                        })
                    }
                }
            };
            if let Some(r) = rebuilt {
                memo.insert(e, r);
                stack.pop();
            }
        }
        memo[&root]
    }
}

#[cfg(test)]
mod tests {
    use crate::{ExprPool, VarKind};
    use aqed_bitvec::Bv;
    use std::collections::HashMap;

    #[test]
    fn substitute_identity_without_map_entry() {
        let mut p = ExprPool::new();
        let x = p.var("x", 8, VarKind::Input);
        let y = p.var("y", 8, VarKind::Input);
        let xe = p.var_expr(x);
        let ye = p.var_expr(y);
        let sum = p.add(xe, ye);
        let c = p.lit(8, 7);
        let map = HashMap::from([(x, c)]);
        let r = p.substitute(sum, &map);
        // y stays symbolic, x became 7
        assert_eq!(p.support(r), vec![y]);
        let v = p.eval(r, &mut |_| Bv::new(8, 3));
        assert_eq!(v, Bv::new(8, 10));
    }

    #[test]
    fn substitute_var_with_expr_chain() {
        let mut p = ExprPool::new();
        let s = p.var("s", 8, VarKind::State);
        let i = p.var("i", 8, VarKind::Input);
        let se = p.var_expr(s);
        let ie = p.var_expr(i);
        let next = p.add(se, ie); // s' = s + i
                                  // Unroll 3 frames: s3 = ((s0 + i) + i) + i with i fixed symbolic
        let mut frame = p.lit(8, 0);
        let mut map = HashMap::new();
        for _ in 0..3 {
            map.insert(s, frame);
            frame = p.substitute(next, &map);
        }
        let v = p.eval(frame, &mut |_| Bv::new(8, 5));
        assert_eq!(v, Bv::new(8, 15));
    }

    #[test]
    fn substitute_folds_constants() {
        let mut p = ExprPool::new();
        let x = p.var("x", 4, VarKind::Input);
        let xe = p.var_expr(x);
        let sq = p.mul(xe, xe);
        let three = p.lit(4, 3);
        let map = HashMap::from([(x, three)]);
        let r = p.substitute(sq, &map);
        assert_eq!(p.as_const(r), Some(Bv::new(4, 9)));
    }

    #[test]
    fn substitute_all_consistent() {
        let mut p = ExprPool::new();
        let x = p.var("x", 8, VarKind::Input);
        let xe = p.var_expr(x);
        let one = p.lit(8, 1);
        let a = p.add(xe, one);
        let b = p.mul(a, xe);
        let k = p.lit(8, 4);
        let map = HashMap::from([(x, k)]);
        let rs = p.substitute_all(&[a, b], &map);
        assert_eq!(p.as_const(rs[0]), Some(Bv::new(8, 5)));
        assert_eq!(p.as_const(rs[1]), Some(Bv::new(8, 20)));
    }

    #[test]
    #[should_panic(expected = "substitution width mismatch")]
    fn substitute_rejects_width_mismatch() {
        let mut p = ExprPool::new();
        let x = p.var("x", 8, VarKind::Input);
        let xe = p.var_expr(x);
        let narrow = p.lit(4, 1);
        let map = HashMap::from([(x, narrow)]);
        let _ = p.substitute(xe, &map);
    }

    #[test]
    fn substitute_deep_chain() {
        let mut p = ExprPool::new();
        let x = p.var("x", 16, VarKind::Input);
        let mut e = p.var_expr(x);
        let one = p.lit(16, 1);
        for _ in 0..100_000 {
            e = p.add(e, one);
        }
        let zero = p.lit(16, 0);
        let map = HashMap::from([(x, zero)]);
        let r = p.substitute(e, &map);
        assert_eq!(p.as_const(r), Some(Bv::new(16, 100_000 % 65_536)));
    }
}
