//! Concrete evaluation of expression DAGs.
//!
//! Evaluation is iterative (explicit work list) so that unrolled circuits
//! thousands of nodes deep cannot overflow the stack, and memoized per
//! call so shared subgraphs are computed once.

use crate::{BinOp, ExprPool, ExprRef, Node, UnOp, VarId};
use aqed_bitvec::Bv;

impl ExprPool {
    /// Evaluates `root` under the variable assignment provided by `env`.
    ///
    /// `env` is invoked once per distinct variable in the support of
    /// `root`; it must return a value of the variable's declared width.
    ///
    /// # Panics
    ///
    /// Panics if `env` returns a value whose width differs from the
    /// variable's declared width, or if `root` is not from this pool.
    ///
    /// # Examples
    ///
    /// ```
    /// use aqed_expr::{ExprPool, VarKind};
    /// use aqed_bitvec::Bv;
    ///
    /// let mut p = ExprPool::new();
    /// let a = p.var("a", 4, VarKind::Input);
    /// let ae = p.var_expr(a);
    /// let sq = p.mul(ae, ae);
    /// let v = p.eval(sq, &mut |_| Bv::new(4, 5));
    /// assert_eq!(v, Bv::new(4, 9)); // 25 mod 16
    /// ```
    pub fn eval(&self, root: ExprRef, env: &mut dyn FnMut(VarId) -> Bv) -> Bv {
        let mut memo: Vec<Option<Bv>> = vec![None; self.len()];
        self.eval_memo(root, env, &mut memo)
    }

    /// Evaluates several roots under one assignment, sharing the memo
    /// table across them (cheaper than repeated [`ExprPool::eval`] when
    /// the roots overlap, as transition-system next functions do).
    pub fn eval_all(&self, roots: &[ExprRef], env: &mut dyn FnMut(VarId) -> Bv) -> Vec<Bv> {
        let mut memo: Vec<Option<Bv>> = vec![None; self.len()];
        roots
            .iter()
            .map(|&r| self.eval_memo(r, env, &mut memo))
            .collect()
    }

    fn eval_memo(
        &self,
        root: ExprRef,
        env: &mut dyn FnMut(VarId) -> Bv,
        memo: &mut [Option<Bv>],
    ) -> Bv {
        if let Some(v) = memo[root.index()] {
            return v;
        }
        // Work list of nodes to finish; a node is computed once all its
        // children are memoized.
        let mut stack = vec![root];
        while let Some(&e) = stack.last() {
            if memo[e.index()].is_some() {
                stack.pop();
                continue;
            }
            let mut pending = false;
            let need = |c: ExprRef, stack: &mut Vec<ExprRef>, pending: &mut bool| {
                if memo[c.index()].is_none() {
                    stack.push(c);
                    *pending = true;
                }
            };
            let value = match *self.node(e) {
                Node::Const(v) => Some(v),
                Node::Var(v) => {
                    let val = env(v);
                    assert!(
                        val.width() == self.var_width(v),
                        "environment returned width {} for variable '{}' of width {}",
                        val.width(),
                        self.var_name(v),
                        self.var_width(v)
                    );
                    Some(val)
                }
                Node::Unary(op, a) => {
                    need(a, &mut stack, &mut pending);
                    if pending {
                        None
                    } else {
                        let x = memo[a.index()].expect("child memoized");
                        Some(match op {
                            UnOp::Not => x.not(),
                            UnOp::Neg => x.neg(),
                            UnOp::RedOr => x.redor(),
                            UnOp::RedAnd => x.redand(),
                            UnOp::RedXor => x.redxor(),
                        })
                    }
                }
                Node::Binary(op, a, b) => {
                    need(a, &mut stack, &mut pending);
                    need(b, &mut stack, &mut pending);
                    if pending {
                        None
                    } else {
                        let x = memo[a.index()].expect("child memoized");
                        let y = memo[b.index()].expect("child memoized");
                        Some(apply_binop(op, x, y))
                    }
                }
                Node::Ite { cond, then_, else_ } => {
                    need(cond, &mut stack, &mut pending);
                    need(then_, &mut stack, &mut pending);
                    need(else_, &mut stack, &mut pending);
                    if pending {
                        None
                    } else {
                        let c = memo[cond.index()].expect("child memoized");
                        Some(if c.is_true() {
                            memo[then_.index()].expect("child memoized")
                        } else {
                            memo[else_.index()].expect("child memoized")
                        })
                    }
                }
                Node::Extract { hi, lo, arg } => {
                    need(arg, &mut stack, &mut pending);
                    if pending {
                        None
                    } else {
                        Some(memo[arg.index()].expect("child memoized").extract(hi, lo))
                    }
                }
                Node::Extend { signed, width, arg } => {
                    need(arg, &mut stack, &mut pending);
                    if pending {
                        None
                    } else {
                        let x = memo[arg.index()].expect("child memoized");
                        Some(if signed { x.sext(width) } else { x.zext(width) })
                    }
                }
            };
            if let Some(v) = value {
                memo[e.index()] = Some(v);
                stack.pop();
            }
        }
        memo[root.index()].expect("root computed")
    }
}

fn apply_binop(op: BinOp, x: Bv, y: Bv) -> Bv {
    match op {
        BinOp::And => x.and(y),
        BinOp::Or => x.or(y),
        BinOp::Xor => x.xor(y),
        BinOp::Add => x.add(y),
        BinOp::Sub => x.sub(y),
        BinOp::Mul => x.mul(y),
        BinOp::Udiv => x.udiv(y),
        BinOp::Urem => x.urem(y),
        BinOp::Shl => x.shl(y),
        BinOp::Lshr => x.lshr(y),
        BinOp::Ashr => x.ashr(y),
        BinOp::Eq => Bv::from_bool(x == y),
        BinOp::Ult => Bv::from_bool(x.ult(y)),
        BinOp::Ule => Bv::from_bool(x.ule(y)),
        BinOp::Slt => Bv::from_bool(x.slt(y)),
        BinOp::Sle => Bv::from_bool(x.sle(y)),
        BinOp::Concat => x.concat(y),
    }
}

#[cfg(test)]
mod tests {
    use crate::{ExprPool, VarKind};
    use aqed_bitvec::Bv;

    #[test]
    fn eval_arith_tree() {
        let mut p = ExprPool::new();
        let a = p.var("a", 8, VarKind::Input);
        let b = p.var("b", 8, VarKind::Input);
        let ae = p.var_expr(a);
        let be = p.var_expr(b);
        // (a + b) * (a - b)
        let sum = p.add(ae, be);
        let diff = p.sub(ae, be);
        let prod = p.mul(sum, diff);
        let v = p.eval(prod, &mut |v| {
            if v == a {
                Bv::new(8, 9)
            } else {
                Bv::new(8, 4)
            }
        });
        assert_eq!(v, Bv::new(8, 65)); // 13 * 5
    }

    #[test]
    fn eval_ite_and_slices() {
        let mut p = ExprPool::new();
        let c = p.var("c", 1, VarKind::Input);
        let x = p.var("x", 16, VarKind::Input);
        let ce = p.var_expr(c);
        let xe = p.var_expr(x);
        let hi = p.extract(xe, 15, 8);
        let lo = p.extract(xe, 7, 0);
        let m = p.ite(ce, hi, lo);
        let env_val = Bv::new(16, 0xAB12);
        let v1 = p.eval(m, &mut |v| {
            if v == c {
                Bv::from_bool(true)
            } else {
                env_val
            }
        });
        assert_eq!(v1, Bv::new(8, 0xAB));
        let v0 = p.eval(m, &mut |v| {
            if v == c {
                Bv::from_bool(false)
            } else {
                env_val
            }
        });
        assert_eq!(v0, Bv::new(8, 0x12));
    }

    #[test]
    fn eval_deep_chain_no_stack_overflow() {
        let mut p = ExprPool::new();
        let x = p.var("x", 32, VarKind::Input);
        let mut e = p.var_expr(x);
        let one = p.lit(32, 1);
        for _ in 0..200_000 {
            e = p.add(e, one);
        }
        let v = p.eval(e, &mut |_| Bv::new(32, 42));
        assert_eq!(v, Bv::new(32, 42 + 200_000));
    }

    #[test]
    fn eval_all_shares_memo() {
        let mut p = ExprPool::new();
        let x = p.var("x", 8, VarKind::Input);
        let xe = p.var_expr(x);
        let sq = p.mul(xe, xe);
        let cube = p.mul(sq, xe);
        let mut calls = 0;
        let vals = p.eval_all(&[sq, cube], &mut |_| {
            calls += 1;
            Bv::new(8, 3)
        });
        assert_eq!(vals, vec![Bv::new(8, 9), Bv::new(8, 27)]);
        assert_eq!(calls, 1, "shared memo evaluates each var once");
    }

    #[test]
    #[should_panic(expected = "environment returned width")]
    fn eval_rejects_wrong_width_env() {
        let mut p = ExprPool::new();
        let x = p.var("x", 8, VarKind::Input);
        let xe = p.var_expr(x);
        let _ = p.eval(xe, &mut |_| Bv::new(4, 0));
    }

    #[test]
    fn eval_matches_folding_on_random_trees() {
        // Build a few structured expressions over constants and check the
        // evaluator agrees with the pool's constant folder.
        let mut p = ExprPool::new();
        let a = p.lit(12, 0x8AB);
        let b = p.lit(12, 0x123);
        let exprs = [
            p.add(a, b),
            p.sub(a, b),
            p.mul(a, b),
            p.udiv(a, b),
            p.urem(a, b),
            p.and(a, b),
            p.or(a, b),
            p.xor(a, b),
            p.shl(a, b),
            p.lshr(a, b),
            p.ashr(a, b),
            p.eq(a, b),
            p.ult(a, b),
            p.sle(a, b),
        ];
        for e in exprs {
            let folded = p.as_const(e).expect("constants fold");
            let evaled = p.eval(e, &mut |_| unreachable!("no vars"));
            assert_eq!(folded, evaled);
        }
    }
}
