//! Hash-consed word-level expression DAG — the RTL-level IR of the A-QED
//! stack.
//!
//! An [`ExprPool`] owns a directed acyclic graph of bit-vector expressions
//! (a BTOR2-like operator set: bitwise logic, wrap-around arithmetic,
//! shifts, comparisons, if-then-else, extract/concat/extend). Nodes are
//! *hash-consed*: structurally identical sub-expressions share one
//! [`ExprRef`], so equality of references implies semantic equality of
//! subgraphs (the converse holds up to the pool's local rewrites).
//!
//! Construction performs constant folding and a small set of sound local
//! rewrites (`x & x → x`, `ite(1, a, b) → a`, …), which keeps the DAG that
//! reaches the bit-blaster compact.
//!
//! Variables ([`VarId`]) are the symbolic leaves: transition-system state
//! and input signals. Evaluation ([`ExprPool::eval`]) and substitution
//! ([`ExprPool::substitute`]) are iterative (no recursion), so arbitrarily
//! deep unrolled circuits are handled without stack overflow.
//!
//! # Examples
//!
//! ```
//! use aqed_expr::{ExprPool, VarKind};
//! use aqed_bitvec::Bv;
//!
//! let mut p = ExprPool::new();
//! let x = p.var("x", 8, VarKind::Input);
//! let xe = p.var_expr(x);
//! let one = p.constant(Bv::new(8, 1));
//! let inc = p.add(xe, one);
//! let v = p.eval(inc, &mut |var| {
//!     assert_eq!(var, x);
//!     Bv::new(8, 0xFF)
//! });
//! assert_eq!(v, Bv::new(8, 0)); // wraps
//! ```

mod eval;
mod print;
mod subst;

pub use print::DisplayExpr;

use aqed_bitvec::Bv;
use std::collections::HashMap;
use std::fmt;

/// Reference to a node inside an [`ExprPool`].
///
/// References are only meaningful for the pool that created them; using a
/// reference with another pool is a logic error (and panics on
/// out-of-bounds access).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprRef(u32);

impl ExprRef {
    /// The raw index of the node in its pool.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a symbolic variable (a circuit input or state element).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(u32);

impl VarId {
    /// The raw index of the variable in its pool.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a variable models. Purely informational — the pool treats all
/// variables uniformly — but consumers (the transition system, the BMC
/// unroller) use it for sanity checks and display.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// A primary input, free in every clock cycle.
    Input,
    /// A state-holding element (register); its value is produced by a next
    /// function.
    State,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Bitwise complement.
    Not,
    /// Two's-complement negation.
    Neg,
    /// OR-reduction to 1 bit.
    RedOr,
    /// AND-reduction to 1 bit.
    RedAnd,
    /// XOR-reduction (parity) to 1 bit.
    RedXor,
}

/// Binary operators. Comparison operators produce 1-bit results; all other
/// operators require equal operand widths and produce that width, except
/// [`BinOp::Concat`], which produces the sum of the operand widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division (`x / 0 = all-ones`).
    Udiv,
    /// Unsigned remainder (`x % 0 = x`).
    Urem,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Lshr,
    /// Arithmetic shift right.
    Ashr,
    /// Equality (1-bit result).
    Eq,
    /// Unsigned less-than (1-bit result).
    Ult,
    /// Unsigned less-or-equal (1-bit result).
    Ule,
    /// Signed less-than (1-bit result).
    Slt,
    /// Signed less-or-equal (1-bit result).
    Sle,
    /// Concatenation: left operand forms the high bits.
    Concat,
}

impl BinOp {
    /// Whether this operator produces a 1-bit (predicate) result.
    #[must_use]
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ult | BinOp::Ule | BinOp::Slt | BinOp::Sle
        )
    }

    /// Whether the operator is commutative (used for hash-cons
    /// normalization).
    #[must_use]
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Add | BinOp::Mul | BinOp::Eq
        )
    }
}

/// An expression node. Exposed read-only through [`ExprPool::node`] so
/// that consumers (bit-blaster, simulator) can traverse the DAG.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Node {
    /// A constant bit-vector.
    Const(Bv),
    /// A symbolic variable.
    Var(VarId),
    /// A unary operation.
    Unary(UnOp, ExprRef),
    /// A binary operation.
    Binary(BinOp, ExprRef, ExprRef),
    /// If-then-else: `cond` must be 1 bit wide; branches must have equal
    /// widths.
    Ite {
        /// 1-bit condition.
        cond: ExprRef,
        /// Value when `cond` is 1.
        then_: ExprRef,
        /// Value when `cond` is 0.
        else_: ExprRef,
    },
    /// Bit-slice `arg[hi..=lo]`.
    Extract {
        /// High bit (inclusive).
        hi: u32,
        /// Low bit (inclusive).
        lo: u32,
        /// Operand.
        arg: ExprRef,
    },
    /// Zero- or sign-extension to `width` bits.
    Extend {
        /// Extend with the sign bit instead of zeros.
        signed: bool,
        /// Result width.
        width: u32,
        /// Operand.
        arg: ExprRef,
    },
}

#[derive(Debug, Clone)]
struct VarData {
    name: String,
    width: u32,
    kind: VarKind,
}

/// Arena owning a hash-consed expression DAG and its variables.
///
/// See the [crate-level documentation](crate) for an overview and example.
#[derive(Debug, Clone, Default)]
pub struct ExprPool {
    nodes: Vec<Node>,
    widths: Vec<u32>,
    intern: HashMap<Node, ExprRef>,
    vars: Vec<VarData>,
}

impl ExprPool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes currently interned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the pool holds no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of declared variables.
    #[must_use]
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Read access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `e` does not belong to this pool.
    #[must_use]
    pub fn node(&self, e: ExprRef) -> &Node {
        &self.nodes[e.index()]
    }

    /// Width in bits of the expression.
    ///
    /// # Panics
    ///
    /// Panics if `e` does not belong to this pool.
    #[must_use]
    pub fn width(&self, e: ExprRef) -> u32 {
        self.widths[e.index()]
    }

    /// Declares a fresh variable. Two calls with the same name create two
    /// *distinct* variables (names are for diagnostics only).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn var(&mut self, name: impl Into<String>, width: u32, kind: VarKind) -> VarId {
        assert!(
            (1..=Bv::MAX_WIDTH).contains(&width),
            "variable width must be in 1..=64, got {width}"
        );
        let id = VarId(u32::try_from(self.vars.len()).expect("too many variables"));
        self.vars.push(VarData {
            name: name.into(),
            width,
            kind,
        });
        id
    }

    /// The diagnostic name of a variable.
    #[must_use]
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.index()].name
    }

    /// The width of a variable.
    #[must_use]
    pub fn var_width(&self, v: VarId) -> u32 {
        self.vars[v.index()].width
    }

    /// The kind of a variable.
    #[must_use]
    pub fn var_kind(&self, v: VarId) -> VarKind {
        self.vars[v.index()].kind
    }

    /// Iterates over all declared variable ids.
    pub fn var_ids(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.vars.len()).map(|i| VarId(i as u32))
    }

    fn intern(&mut self, node: Node, width: u32) -> ExprRef {
        if let Some(&e) = self.intern.get(&node) {
            return e;
        }
        let e = ExprRef(u32::try_from(self.nodes.len()).expect("expression pool overflow"));
        self.nodes.push(node.clone());
        self.widths.push(width);
        self.intern.insert(node, e);
        e
    }

    /// Interns a constant.
    pub fn constant(&mut self, value: Bv) -> ExprRef {
        self.intern(Node::Const(value), value.width())
    }

    /// Shorthand for [`ExprPool::constant`] from a width and raw value.
    pub fn lit(&mut self, width: u32, value: u64) -> ExprRef {
        self.constant(Bv::new(width, value))
    }

    /// The 1-bit constant 1 ("true").
    pub fn true_(&mut self) -> ExprRef {
        self.constant(Bv::from_bool(true))
    }

    /// The 1-bit constant 0 ("false").
    pub fn false_(&mut self) -> ExprRef {
        self.constant(Bv::from_bool(false))
    }

    /// The expression referring to variable `v`.
    pub fn var_expr(&mut self, v: VarId) -> ExprRef {
        let w = self.var_width(v);
        self.intern(Node::Var(v), w)
    }

    /// If the expression is a constant, returns its value.
    #[must_use]
    pub fn as_const(&self, e: ExprRef) -> Option<Bv> {
        match self.node(e) {
            Node::Const(v) => Some(*v),
            _ => None,
        }
    }

    /// If the expression is a bare variable, returns its id.
    #[must_use]
    pub fn as_var(&self, e: ExprRef) -> Option<VarId> {
        match self.node(e) {
            Node::Var(v) => Some(*v),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Unary builders
    // ------------------------------------------------------------------

    /// Builds a unary operation (with constant folding and double-negation
    /// elimination).
    pub fn unary(&mut self, op: UnOp, a: ExprRef) -> ExprRef {
        if let Some(v) = self.as_const(a) {
            let folded = match op {
                UnOp::Not => v.not(),
                UnOp::Neg => v.neg(),
                UnOp::RedOr => v.redor(),
                UnOp::RedAnd => v.redand(),
                UnOp::RedXor => v.redxor(),
            };
            return self.constant(folded);
        }
        if let Node::Unary(inner_op, inner) = *self.node(a) {
            if (op == UnOp::Not && inner_op == UnOp::Not)
                || (op == UnOp::Neg && inner_op == UnOp::Neg)
            {
                return inner;
            }
        }
        if self.width(a) == 1 && matches!(op, UnOp::RedOr | UnOp::RedAnd | UnOp::RedXor) {
            return a;
        }
        let w = match op {
            UnOp::Not | UnOp::Neg => self.width(a),
            UnOp::RedOr | UnOp::RedAnd | UnOp::RedXor => 1,
        };
        self.intern(Node::Unary(op, a), w)
    }

    /// Bitwise NOT.
    pub fn not(&mut self, a: ExprRef) -> ExprRef {
        self.unary(UnOp::Not, a)
    }

    /// Two's-complement negation.
    pub fn neg(&mut self, a: ExprRef) -> ExprRef {
        self.unary(UnOp::Neg, a)
    }

    /// OR-reduction to one bit.
    pub fn redor(&mut self, a: ExprRef) -> ExprRef {
        self.unary(UnOp::RedOr, a)
    }

    /// AND-reduction to one bit.
    pub fn redand(&mut self, a: ExprRef) -> ExprRef {
        self.unary(UnOp::RedAnd, a)
    }

    /// XOR-reduction (parity) to one bit.
    pub fn redxor(&mut self, a: ExprRef) -> ExprRef {
        self.unary(UnOp::RedXor, a)
    }

    // ------------------------------------------------------------------
    // Binary builders
    // ------------------------------------------------------------------

    /// Builds a binary operation, applying constant folding and local
    /// rewrites.
    ///
    /// # Panics
    ///
    /// Panics if the operand widths are incompatible for `op`.
    pub fn binary(&mut self, op: BinOp, mut a: ExprRef, mut b: ExprRef) -> ExprRef {
        let (wa, wb) = (self.width(a), self.width(b));
        if op == BinOp::Concat {
            assert!(
                wa + wb <= Bv::MAX_WIDTH,
                "concat result width {} exceeds {}",
                wa + wb,
                Bv::MAX_WIDTH
            );
        } else {
            assert!(wa == wb, "width mismatch in {op:?}: {wa} vs {wb}");
        }
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            let folded = match op {
                BinOp::And => x.and(y),
                BinOp::Or => x.or(y),
                BinOp::Xor => x.xor(y),
                BinOp::Add => x.add(y),
                BinOp::Sub => x.sub(y),
                BinOp::Mul => x.mul(y),
                BinOp::Udiv => x.udiv(y),
                BinOp::Urem => x.urem(y),
                BinOp::Shl => x.shl(y),
                BinOp::Lshr => x.lshr(y),
                BinOp::Ashr => x.ashr(y),
                BinOp::Eq => Bv::from_bool(x == y),
                BinOp::Ult => Bv::from_bool(x.ult(y)),
                BinOp::Ule => Bv::from_bool(x.ule(y)),
                BinOp::Slt => Bv::from_bool(x.slt(y)),
                BinOp::Sle => Bv::from_bool(x.sle(y)),
                BinOp::Concat => x.concat(y),
            };
            return self.constant(folded);
        }
        if op.is_commutative() && a > b {
            std::mem::swap(&mut a, &mut b);
        }
        if let Some(e) = self.rewrite_binary(op, a, b) {
            return e;
        }
        let w = if op.is_predicate() {
            1
        } else if op == BinOp::Concat {
            wa + wb
        } else {
            wa
        };
        self.intern(Node::Binary(op, a, b), w)
    }

    /// Sound local rewrites (identity/absorbing elements, idempotence).
    fn rewrite_binary(&mut self, op: BinOp, a: ExprRef, b: ExprRef) -> Option<ExprRef> {
        let w = self.width(a);
        let ca = self.as_const(a);
        let cb = self.as_const(b);
        let zero = |c: Option<Bv>| c.is_some_and(|v| v.is_zero());
        let ones = |c: Option<Bv>| c.is_some_and(|v| v.is_ones());
        let one = |c: Option<Bv>| c.is_some_and(|v| v.to_u64() == 1);
        match op {
            BinOp::And => {
                if a == b {
                    return Some(a);
                }
                if zero(ca) || zero(cb) {
                    return Some(self.lit(w, 0));
                }
                if ones(ca) {
                    return Some(b);
                }
                if ones(cb) {
                    return Some(a);
                }
            }
            BinOp::Or => {
                if a == b {
                    return Some(a);
                }
                if ones(ca) || ones(cb) {
                    return Some(self.constant(Bv::ones(w)));
                }
                if zero(ca) {
                    return Some(b);
                }
                if zero(cb) {
                    return Some(a);
                }
            }
            BinOp::Xor => {
                if a == b {
                    return Some(self.lit(w, 0));
                }
                if zero(ca) {
                    return Some(b);
                }
                if zero(cb) {
                    return Some(a);
                }
                if ones(ca) {
                    return Some(self.not(b));
                }
                if ones(cb) {
                    return Some(self.not(a));
                }
            }
            BinOp::Add => {
                if zero(ca) {
                    return Some(b);
                }
                if zero(cb) {
                    return Some(a);
                }
            }
            BinOp::Sub => {
                if zero(cb) {
                    return Some(a);
                }
                if a == b {
                    return Some(self.lit(w, 0));
                }
            }
            BinOp::Mul => {
                if zero(ca) || zero(cb) {
                    return Some(self.lit(w, 0));
                }
                if one(ca) {
                    return Some(b);
                }
                if one(cb) {
                    return Some(a);
                }
            }
            BinOp::Shl | BinOp::Lshr | BinOp::Ashr => {
                if zero(cb) {
                    return Some(a);
                }
                if zero(ca) {
                    return Some(self.lit(w, 0));
                }
            }
            BinOp::Eq => {
                if a == b {
                    return Some(self.true_());
                }
                if w == 1 {
                    if ones(cb) {
                        return Some(a);
                    }
                    if zero(cb) {
                        return Some(self.not(a));
                    }
                    if ones(ca) {
                        return Some(b);
                    }
                    if zero(ca) {
                        return Some(self.not(b));
                    }
                }
            }
            BinOp::Ult if a == b || zero(cb) => return Some(self.false_()),
            BinOp::Ule if a == b || zero(ca) => return Some(self.true_()),
            BinOp::Slt if a == b => return Some(self.false_()),
            BinOp::Sle if a == b => return Some(self.true_()),
            _ => {}
        }
        None
    }

    /// Bitwise AND. See [`ExprPool::binary`] for panics.
    pub fn and(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinOp::And, a, b)
    }

    /// Bitwise OR. See [`ExprPool::binary`] for panics.
    pub fn or(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinOp::Or, a, b)
    }

    /// Bitwise XOR. See [`ExprPool::binary`] for panics.
    pub fn xor(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinOp::Xor, a, b)
    }

    /// Wrapping addition. See [`ExprPool::binary`] for panics.
    pub fn add(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinOp::Add, a, b)
    }

    /// Wrapping subtraction. See [`ExprPool::binary`] for panics.
    pub fn sub(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinOp::Sub, a, b)
    }

    /// Wrapping multiplication. See [`ExprPool::binary`] for panics.
    pub fn mul(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinOp::Mul, a, b)
    }

    /// Unsigned division. See [`ExprPool::binary`] for panics.
    pub fn udiv(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinOp::Udiv, a, b)
    }

    /// Unsigned remainder. See [`ExprPool::binary`] for panics.
    pub fn urem(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinOp::Urem, a, b)
    }

    /// Logical shift left. See [`ExprPool::binary`] for panics.
    pub fn shl(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinOp::Shl, a, b)
    }

    /// Logical shift right. See [`ExprPool::binary`] for panics.
    pub fn lshr(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinOp::Lshr, a, b)
    }

    /// Arithmetic shift right. See [`ExprPool::binary`] for panics.
    pub fn ashr(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinOp::Ashr, a, b)
    }

    /// Equality predicate (1-bit result). See [`ExprPool::binary`] for panics.
    pub fn eq(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinOp::Eq, a, b)
    }

    /// Disequality predicate (1-bit result). See [`ExprPool::binary`] for panics.
    pub fn ne(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        let e = self.eq(a, b);
        self.not(e)
    }

    /// Unsigned less-than predicate. See [`ExprPool::binary`] for panics.
    pub fn ult(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinOp::Ult, a, b)
    }

    /// Unsigned less-or-equal predicate. See [`ExprPool::binary`] for panics.
    pub fn ule(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinOp::Ule, a, b)
    }

    /// Unsigned greater-than predicate. See [`ExprPool::binary`] for panics.
    pub fn ugt(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinOp::Ult, b, a)
    }

    /// Unsigned greater-or-equal predicate. See [`ExprPool::binary`] for panics.
    pub fn uge(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinOp::Ule, b, a)
    }

    /// Signed less-than predicate. See [`ExprPool::binary`] for panics.
    pub fn slt(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinOp::Slt, a, b)
    }

    /// Signed less-or-equal predicate. See [`ExprPool::binary`] for panics.
    pub fn sle(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinOp::Sle, a, b)
    }

    /// Concatenation (`a` high, `b` low). See [`ExprPool::binary`] for panics.
    pub fn concat(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binary(BinOp::Concat, a, b)
    }

    /// Boolean implication over 1-bit values: `!a | b`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 1 bit wide.
    pub fn implies(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        assert!(
            self.width(a) == 1 && self.width(b) == 1,
            "implies requires 1-bit operands"
        );
        let na = self.not(a);
        self.or(na, b)
    }

    // ------------------------------------------------------------------
    // Ternary and structural builders
    // ------------------------------------------------------------------

    /// If-then-else multiplexer.
    ///
    /// # Panics
    ///
    /// Panics if `cond` is not 1 bit wide or the branch widths differ.
    pub fn ite(&mut self, cond: ExprRef, then_: ExprRef, else_: ExprRef) -> ExprRef {
        assert!(self.width(cond) == 1, "ite condition must be 1 bit");
        let w = self.width(then_);
        assert!(
            w == self.width(else_),
            "ite branch width mismatch: {} vs {}",
            w,
            self.width(else_)
        );
        if let Some(c) = self.as_const(cond) {
            return if c.is_true() { then_ } else { else_ };
        }
        if then_ == else_ {
            return then_;
        }
        if w == 1 {
            if let (Some(t), Some(e)) = (self.as_const(then_), self.as_const(else_)) {
                return match (t.is_true(), e.is_true()) {
                    (true, false) => cond,
                    (false, true) => self.not(cond),
                    _ => unreachable!("equal branches already handled"),
                };
            }
        }
        self.intern(Node::Ite { cond, then_, else_ }, w)
    }

    /// Bit-slice `arg[hi..=lo]`.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi >= width(arg)`.
    pub fn extract(&mut self, arg: ExprRef, hi: u32, lo: u32) -> ExprRef {
        let w = self.width(arg);
        assert!(hi >= lo, "extract hi {hi} < lo {lo}");
        assert!(hi < w, "extract hi {hi} out of range for width {w}");
        if lo == 0 && hi == w - 1 {
            return arg;
        }
        if let Some(v) = self.as_const(arg) {
            return self.constant(v.extract(hi, lo));
        }
        if let Node::Extract {
            lo: ilo,
            arg: inner,
            ..
        } = *self.node(arg)
        {
            return self.extract(inner, ilo + hi, ilo + lo);
        }
        self.intern(Node::Extract { hi, lo, arg }, hi - lo + 1)
    }

    /// The single bit `arg[i]` as a 1-bit expression.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width(arg)`.
    pub fn bit(&mut self, arg: ExprRef, i: u32) -> ExprRef {
        self.extract(arg, i, i)
    }

    /// Zero-extension to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is smaller than the operand width or exceeds 64.
    pub fn zext(&mut self, arg: ExprRef, width: u32) -> ExprRef {
        self.extend_impl(arg, width, false)
    }

    /// Sign-extension to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is smaller than the operand width or exceeds 64.
    pub fn sext(&mut self, arg: ExprRef, width: u32) -> ExprRef {
        self.extend_impl(arg, width, true)
    }

    fn extend_impl(&mut self, arg: ExprRef, width: u32, signed: bool) -> ExprRef {
        let w = self.width(arg);
        assert!(
            width >= w && width <= Bv::MAX_WIDTH,
            "extend to {width} invalid from width {w}"
        );
        if width == w {
            return arg;
        }
        if let Some(v) = self.as_const(arg) {
            return self.constant(if signed { v.sext(width) } else { v.zext(width) });
        }
        self.intern(Node::Extend { signed, width, arg }, width)
    }

    /// N-ary AND of 1-bit expressions; the empty conjunction is `true`.
    ///
    /// # Panics
    ///
    /// Panics if any operand is not 1 bit wide.
    pub fn and_all<I: IntoIterator<Item = ExprRef>>(&mut self, items: I) -> ExprRef {
        let mut acc = self.true_();
        for e in items {
            assert!(self.width(e) == 1, "and_all requires 1-bit operands");
            acc = self.and(acc, e);
        }
        acc
    }

    /// N-ary OR of 1-bit expressions; the empty disjunction is `false`.
    ///
    /// # Panics
    ///
    /// Panics if any operand is not 1 bit wide.
    pub fn or_all<I: IntoIterator<Item = ExprRef>>(&mut self, items: I) -> ExprRef {
        let mut acc = self.false_();
        for e in items {
            assert!(self.width(e) == 1, "or_all requires 1-bit operands");
            acc = self.or(acc, e);
        }
        acc
    }

    /// Selects `options[index]` as a mux chain; index values past the end
    /// of `options` yield `default`.
    ///
    /// # Panics
    ///
    /// Panics if option widths differ from `default`'s width, or if an
    /// option position does not fit in the index width.
    pub fn select(&mut self, index: ExprRef, options: &[ExprRef], default: ExprRef) -> ExprRef {
        let iw = self.width(index);
        assert!(
            (options.len() as u64) <= Bv::mask(iw).saturating_add(1),
            "{} options do not fit in a {iw}-bit index",
            options.len()
        );
        let mut acc = default;
        for (i, &opt) in options.iter().enumerate().rev() {
            let idx = self.lit(iw, i as u64);
            let hit = self.eq(index, idx);
            acc = self.ite(hit, opt, acc);
        }
        acc
    }

    /// Returns the set of variables the expression depends on, in
    /// deterministic (id) order.
    #[must_use]
    pub fn support(&self, root: ExprRef) -> Vec<VarId> {
        self.support_all(std::iter::once(root))
    }

    /// Returns the set of variables any of the given expressions depend
    /// on, in deterministic (id) order.
    #[must_use]
    pub fn support_all<I: IntoIterator<Item = ExprRef>>(&self, roots: I) -> Vec<VarId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut vars = Vec::new();
        let mut stack: Vec<ExprRef> = roots.into_iter().collect();
        while let Some(e) = stack.pop() {
            if seen[e.index()] {
                continue;
            }
            seen[e.index()] = true;
            match self.node(e) {
                Node::Const(_) => {}
                Node::Var(v) => vars.push(*v),
                Node::Unary(_, a) => stack.push(*a),
                Node::Binary(_, a, b) => {
                    stack.push(*a);
                    stack.push(*b);
                }
                Node::Ite { cond, then_, else_ } => {
                    stack.push(*cond);
                    stack.push(*then_);
                    stack.push(*else_);
                }
                Node::Extract { arg, .. } | Node::Extend { arg, .. } => stack.push(*arg),
            }
        }
        vars.sort_unstable();
        vars.dedup();
        vars
    }
}

impl fmt::Display for ExprPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ExprPool({} nodes, {} vars)",
            self.nodes.len(),
            self.vars.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_shares_nodes() {
        let mut p = ExprPool::new();
        let x = p.var("x", 8, VarKind::Input);
        let xe = p.var_expr(x);
        let a = p.lit(8, 3);
        let s1 = p.add(xe, a);
        let s2 = p.add(xe, a);
        assert_eq!(s1, s2);
        let s3 = p.add(a, xe); // commutative normalization
        assert_eq!(s1, s3);
    }

    #[test]
    fn distinct_vars_same_name() {
        let mut p = ExprPool::new();
        let a = p.var("x", 8, VarKind::Input);
        let b = p.var("x", 8, VarKind::Input);
        assert_ne!(a, b);
        let ae = p.var_expr(a);
        let be = p.var_expr(b);
        assert_ne!(ae, be);
        assert_eq!(p.var_name(a), "x");
        assert_eq!(p.var_width(a), 8);
        assert_eq!(p.var_kind(a), VarKind::Input);
    }

    #[test]
    fn constant_folding() {
        let mut p = ExprPool::new();
        let a = p.lit(8, 200);
        let b = p.lit(8, 100);
        let add = p.add(a, b);
        assert_eq!(p.as_const(add).unwrap(), Bv::new(8, 44));
        let lt = p.ult(b, a);
        assert_eq!(p.as_const(lt).unwrap(), Bv::from_bool(true));
        let cc = p.concat(a, b);
        assert_eq!(p.as_const(cc).unwrap(), Bv::new(16, 200 << 8 | 100));
    }

    #[test]
    fn rewrites() {
        let mut p = ExprPool::new();
        let x = p.var("x", 8, VarKind::Input);
        let xe = p.var_expr(x);
        let zero = p.lit(8, 0);
        let ones = p.constant(Bv::ones(8));
        assert_eq!(p.and(xe, xe), xe);
        assert_eq!(p.and(xe, zero), zero);
        assert_eq!(p.and(xe, ones), xe);
        assert_eq!(p.or(xe, zero), xe);
        assert_eq!(p.xor(xe, xe), zero);
        assert_eq!(p.add(xe, zero), xe);
        assert_eq!(p.sub(xe, xe), zero);
        let t = p.true_();
        let eq = p.eq(xe, xe);
        assert_eq!(eq, t);
        let n1 = p.not(xe);
        let nn = p.not(n1);
        assert_eq!(nn, xe);
        let f = p.false_();
        let ult = p.ult(xe, zero);
        assert_eq!(ult, f);
    }

    #[test]
    fn ite_simplification() {
        let mut p = ExprPool::new();
        let c = p.var("c", 1, VarKind::Input);
        let ce = p.var_expr(c);
        let x = p.var("x", 8, VarKind::Input);
        let xe = p.var_expr(x);
        let y = p.var("y", 8, VarKind::Input);
        let ye = p.var_expr(y);
        let t = p.true_();
        let f = p.false_();
        assert_eq!(p.ite(t, xe, ye), xe);
        assert_eq!(p.ite(f, xe, ye), ye);
        assert_eq!(p.ite(ce, xe, xe), xe);
        assert_eq!(p.ite(ce, t, f), ce);
        let nce = p.not(ce);
        assert_eq!(p.ite(ce, f, t), nce);
    }

    #[test]
    fn extract_composition() {
        let mut p = ExprPool::new();
        let x = p.var("x", 16, VarKind::Input);
        let xe = p.var_expr(x);
        let mid = p.extract(xe, 11, 4); // 8 bits
        let low = p.extract(mid, 3, 0); // bits 7..4 of x
        let direct = p.extract(xe, 7, 4);
        assert_eq!(low, direct);
        assert_eq!(p.extract(xe, 15, 0), xe);
        assert_eq!(p.width(mid), 8);
    }

    #[test]
    fn extension_identities() {
        let mut p = ExprPool::new();
        let x = p.var("x", 8, VarKind::Input);
        let xe = p.var_expr(x);
        assert_eq!(p.zext(xe, 8), xe);
        let z16 = p.zext(xe, 16);
        assert_eq!(p.width(z16), 16);
        let c = p.lit(4, 0x9);
        let sc = p.sext(c, 8);
        assert_eq!(p.as_const(sc).unwrap(), Bv::new(8, 0xF9));
    }

    #[test]
    fn nary_helpers() {
        let mut p = ExprPool::new();
        let a = p.var("a", 1, VarKind::Input);
        let ae = p.var_expr(a);
        let t = p.true_();
        let f = p.false_();
        assert_eq!(p.and_all([]), t);
        assert_eq!(p.or_all([]), f);
        assert_eq!(p.and_all([ae, t]), ae);
        assert_eq!(p.or_all([ae, f]), ae);
        assert_eq!(p.and_all([ae, f]), f);
    }

    #[test]
    fn select_builds_mux() {
        let mut p = ExprPool::new();
        let idx = p.var("i", 2, VarKind::Input);
        let ie = p.var_expr(idx);
        let opts: Vec<_> = (0..3u64).map(|v| p.lit(8, v * 10)).collect();
        let def = p.lit(8, 0xFF);
        let sel = p.select(ie, &opts, def);
        for (i, want) in [(0u64, 0u64), (1, 10), (2, 20), (3, 0xFF)] {
            let got = p.eval(sel, &mut |_| Bv::new(2, i));
            assert_eq!(got, Bv::new(8, want), "index {i}");
        }
    }

    #[test]
    #[should_panic(expected = "do not fit")]
    fn select_index_too_narrow() {
        let mut p = ExprPool::new();
        let idx = p.var("i", 1, VarKind::Input);
        let ie = p.var_expr(idx);
        let opts: Vec<_> = (0..3u64).map(|v| p.lit(8, v)).collect();
        let def = p.lit(8, 0);
        let _ = p.select(ie, &opts, def);
    }

    #[test]
    fn support_reports_vars() {
        let mut p = ExprPool::new();
        let a = p.var("a", 8, VarKind::Input);
        let b = p.var("b", 8, VarKind::State);
        let c = p.var("c", 8, VarKind::Input);
        let ae = p.var_expr(a);
        let be = p.var_expr(b);
        let sum = p.add(ae, be);
        assert_eq!(p.support(sum), vec![a, b]);
        let ce = p.var_expr(c);
        let full = p.mul(sum, ce);
        assert_eq!(p.support(full), vec![a, b, c]);
        let k = p.lit(8, 5);
        assert!(p.support(k).is_empty());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn binary_width_mismatch() {
        let mut p = ExprPool::new();
        let a = p.var("a", 8, VarKind::Input);
        let b = p.var("b", 4, VarKind::Input);
        let ae = p.var_expr(a);
        let be = p.var_expr(b);
        let _ = p.add(ae, be);
    }

    #[test]
    fn predicate_widths() {
        let mut p = ExprPool::new();
        let a = p.var("a", 8, VarKind::Input);
        let b = p.var("b", 8, VarKind::Input);
        let ae = p.var_expr(a);
        let be = p.var_expr(b);
        let eq = p.eq(ae, be);
        assert_eq!(p.width(eq), 1);
        let lt = p.ult(ae, be);
        assert_eq!(p.width(lt), 1);
        let cc = p.concat(ae, be);
        assert_eq!(p.width(cc), 16);
        let gt = p.ugt(ae, be);
        let lt2 = p.ult(be, ae);
        assert_eq!(gt, lt2);
    }

    #[test]
    fn reduction_of_one_bit_is_identity() {
        let mut p = ExprPool::new();
        let a = p.var("a", 1, VarKind::Input);
        let ae = p.var_expr(a);
        assert_eq!(p.redor(ae), ae);
        assert_eq!(p.redand(ae), ae);
        assert_eq!(p.redxor(ae), ae);
    }
}
