//! Property test of the HLS-lite synthesis: for arbitrary pipeline
//! geometry and traffic patterns, a healthy synthesized accelerator is
//! observationally a FIFO of function applications — every captured
//! input's result is delivered exactly once, in capture order, with no
//! spurious outputs.

use aqed_bitvec::Bv;
use aqed_expr::ExprPool;
use aqed_hls::{synthesize, AccelSpec, SynthOptions};
use aqed_tsys::Simulator;
use proptest::prelude::*;
use std::collections::VecDeque;

#[derive(Debug, Clone)]
struct Cycle {
    send: bool,
    data: u64,
    rdh: bool,
}

fn traffic() -> impl Strategy<Value = Vec<Cycle>> {
    prop::collection::vec(
        (any::<bool>(), 0u64..256, prop::bool::weighted(0.6)),
        10..120,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(send, data, rdh)| Cycle { send, data, rdh })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn synthesized_design_is_an_ordered_function_fifo(
        traffic in traffic(),
        latency in 1usize..5,
        ii in 1usize..3,
        depth in 1usize..4,
    ) {
        let f = |d: u64| (d.wrapping_mul(3) ^ 0x2A) & 0xFF;
        let mut pool = ExprPool::new();
        let spec = AccelSpec::new("prop_hls", 2, 8, 8)
            .with_latency(latency)
            .with_initiation_interval(ii)
            .with_fifo_depth(depth);
        let lca = synthesize(&spec, &mut pool, SynthOptions::default(), |p, _a, d| {
            let three = p.lit(8, 3);
            let mask = p.lit(8, 0x2A);
            let m = p.mul(d, three);
            p.xor(m, mask)
        });
        lca.ts.validate(&pool).expect("valid");
        let mut sim = Simulator::new(&lca.ts, &pool);
        let mut expected: VecDeque<u64> = VecDeque::new();
        let mut captured_count = 0u64;
        let mut delivered_count = 0u64;
        for c in &traffic {
            let inputs = [
                (lca.action, Bv::new(2, u64::from(c.send))),
                (lca.data, Bv::new(8, c.data)),
                (lca.rdh, Bv::from_bool(c.rdh)),
            ];
            let cap = sim.peek(&pool, lca.captured, &inputs).is_true();
            let del = sim.peek(&pool, lca.delivered, &inputs).is_true();
            let out = sim.peek(&pool, lca.out, &inputs).to_u64();
            sim.step_with(&lca.ts, &pool, &inputs);
            if cap {
                prop_assert!(c.send, "capture only when an op was offered");
                expected.push_back(f(c.data));
                captured_count += 1;
            }
            if del {
                let want = expected.pop_front();
                prop_assert_eq!(Some(out), want, "in-order delivery");
                delivered_count += 1;
            }
        }
        // Drain: everything captured must eventually come out.
        for _ in 0..(traffic.len() + latency * 4 + 16) {
            let inputs = [
                (lca.action, Bv::new(2, 0)),
                (lca.data, Bv::new(8, 0)),
                (lca.rdh, Bv::from_bool(true)),
            ];
            let del = sim.peek(&pool, lca.delivered, &inputs).is_true();
            let out = sim.peek(&pool, lca.out, &inputs).to_u64();
            sim.step_with(&lca.ts, &pool, &inputs);
            if del {
                let want = expected.pop_front();
                prop_assert_eq!(Some(out), want, "in-order delivery during drain");
                delivered_count += 1;
            }
        }
        prop_assert!(expected.is_empty(), "no output lost (RB in concrete form)");
        prop_assert_eq!(captured_count, delivered_count);
    }

    #[test]
    fn initiation_interval_limits_throughput(
        ii in 1usize..5,
        cycles in 20usize..60,
    ) {
        let mut pool = ExprPool::new();
        let spec = AccelSpec::new("ii_prop", 2, 8, 8)
            .with_initiation_interval(ii)
            .with_fifo_depth(4);
        let lca = synthesize(&spec, &mut pool, SynthOptions::default(), |_p, _a, d| d);
        let mut sim = Simulator::new(&lca.ts, &pool);
        let mut captures = 0usize;
        for _ in 0..cycles {
            let inputs = [
                (lca.action, Bv::new(2, 1)),
                (lca.data, Bv::new(8, 7)),
                (lca.rdh, Bv::from_bool(true)),
            ];
            let cap = sim.peek(&pool, lca.captured, &inputs).is_true();
            sim.step_with(&lca.ts, &pool, &inputs);
            captures += usize::from(cap);
        }
        prop_assert!(captures <= cycles / ii + 1, "II must throttle: {captures} in {cycles}");
    }
}
