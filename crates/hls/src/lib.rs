//! HLS-lite: declarative accelerator synthesis into ready-valid
//! transition systems.
//!
//! The A-QED paper leverages commercial HLS (Catapult, Vivado HLS) for two
//! things: identifying the accelerator's inputs/outputs from a high-level
//! function prototype, and generating the RTL the A-QED module hooks into.
//! This crate provides the equivalent affordance: an accelerator is
//! described as an [`AccelSpec`] (interface geometry and micro-architecture
//! parameters) plus a *datapath* — a closure building the word-level
//! expression for one operation — and [`synthesize`] compiles it into a
//! pipelined [`TransitionSystem`] with the paper's loosely-coupled
//! accelerator (LCA) handshake:
//!
//! * inputs `action` (`a = 0` is the invalid action `a_⊥`), `data`, and
//!   host-ready `rdh`,
//! * outputs `out`, `out_valid` (`o_⊥` ≡ `out_valid = 0`) and
//!   input-ready `rdin`.
//!
//! The generated micro-architecture is a capture register, a `latency`-deep
//! valid/value pipeline with an initiation-interval throttle, an output
//! FIFO, and credit-based backpressure so the FIFO can never overflow —
//! unless a bug is injected through [`SynthOptions`] (missing credit check,
//! a pipeline stage that ignores `clock_enable`, an undersized FIFO), which
//! is exactly how the case-study bug suites are built.
//!
//! # Examples
//!
//! A 2-cycle-latency squarer, simulated through its handshake:
//!
//! ```
//! use aqed_hls::{synthesize, AccelSpec, SynthOptions};
//! use aqed_expr::ExprPool;
//! use aqed_bitvec::Bv;
//! use aqed_tsys::Simulator;
//!
//! let mut p = ExprPool::new();
//! let spec = AccelSpec::new("squarer", 2, 8, 8).with_latency(2);
//! let lca = synthesize(&spec, &mut p, SynthOptions::default(), |pool, _action, data| {
//!     pool.mul(data, data)
//! });
//! let mut sim = Simulator::new(&lca.ts, &p);
//! // Send action 1 with data 7, host always ready.
//! let mut seen = None;
//! for cycle in 0..6 {
//!     let inputs = [
//!         (lca.action, Bv::new(2, u64::from(cycle == 0))),
//!         (lca.data, Bv::new(8, 7)),
//!         (lca.rdh, Bv::from_bool(true)),
//!     ];
//!     let rec = sim.step_with(&lca.ts, &p, &inputs);
//!     if rec.output("out_valid") == Some(Bv::from_bool(true)) {
//!         seen = rec.output("out");
//!         break;
//!     }
//! }
//! assert_eq!(seen, Some(Bv::new(8, 49)));
//! ```

use aqed_expr::{ExprPool, ExprRef, VarId};
use aqed_tsys::TransitionSystem;

/// Interface geometry and micro-architecture parameters of an accelerator.
///
/// Widths follow the paper's model: the `action` input selects the
/// operation (value 0 is reserved for the invalid action `a_⊥`), `data`
/// carries the operand(s), and the result is `out_width` bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccelSpec {
    /// Diagnostic name.
    pub name: String,
    /// Width of the action input in bits (0 = invalid action).
    pub action_width: u32,
    /// Width of the data input in bits.
    pub data_width: u32,
    /// Width of the output in bits.
    pub out_width: u32,
    /// Cycles from input capture to result availability (≥ 1).
    pub latency: usize,
    /// Minimum cycles between two captures (≥ 1; 1 = fully pipelined).
    pub initiation_interval: usize,
    /// Output FIFO depth (≥ 1).
    pub fifo_depth: usize,
    /// Adds a global `clock_enable` input gating every register.
    pub has_clock_enable: bool,
}

impl AccelSpec {
    /// Creates a spec with the given interface widths, latency 1,
    /// initiation interval 1, FIFO depth 2 and no clock enable.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        action_width: u32,
        data_width: u32,
        out_width: u32,
    ) -> Self {
        AccelSpec {
            name: name.into(),
            action_width,
            data_width,
            out_width,
            latency: 1,
            initiation_interval: 1,
            fifo_depth: 2,
            has_clock_enable: false,
        }
    }

    /// Sets the pipeline latency (cycles from capture to result).
    ///
    /// # Panics
    ///
    /// Panics if `latency` is 0.
    #[must_use]
    pub fn with_latency(mut self, latency: usize) -> Self {
        assert!(latency >= 1, "latency must be at least 1");
        self.latency = latency;
        self
    }

    /// Sets the initiation interval (cycles between captures).
    ///
    /// # Panics
    ///
    /// Panics if `ii` is 0.
    #[must_use]
    pub fn with_initiation_interval(mut self, ii: usize) -> Self {
        assert!(ii >= 1, "initiation interval must be at least 1");
        self.initiation_interval = ii;
        self
    }

    /// Sets the output FIFO depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is 0.
    #[must_use]
    pub fn with_fifo_depth(mut self, depth: usize) -> Self {
        assert!(depth >= 1, "fifo depth must be at least 1");
        self.fifo_depth = depth;
        self
    }

    /// Adds a global clock-enable input (the design pauses entirely while
    /// it is low, as in the paper's motivating example).
    #[must_use]
    pub fn with_clock_enable(mut self) -> Self {
        self.has_clock_enable = true;
        self
    }
}

/// Synthesis-time bug-injection hooks (all disabled by default). These
/// reproduce the *classes* of RTL defects reported in the paper's case
/// studies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SynthOptions {
    /// Omit the credit-based backpressure check: `rdin` then ignores
    /// in-flight operations, so the output FIFO can overflow and drop
    /// results (an RB bug: outputs never arrive).
    pub skip_credit_check: bool,
    /// Index of a pipeline stage that ignores `clock_enable` — the
    /// paper's Fig. 2 bug class. Only meaningful when the spec has a
    /// clock enable.
    pub broken_ce_stage: Option<usize>,
    /// Corrupt the result value when the pipeline-exit coincides with a
    /// capture (a subtle forwarding bug: FC violation that needs
    /// back-to-back traffic to trigger).
    pub forwarding_bug: bool,
}

/// A synthesized loosely-coupled accelerator: the transition system plus
/// the handles A-QED needs to attach its monitor.
#[derive(Debug, Clone)]
pub struct Lca {
    /// The synthesized design.
    pub ts: TransitionSystem,
    /// Action input variable (`0` = invalid action `a_⊥`).
    pub action: VarId,
    /// Data input variable.
    pub data: VarId,
    /// Host-ready input variable (`rdh`).
    pub rdh: VarId,
    /// Optional global clock-enable input.
    pub clock_enable: Option<VarId>,
    /// Result output expression.
    pub out: ExprRef,
    /// Output-valid expression (`o_⊥` ≡ low).
    pub out_valid: ExprRef,
    /// Input-ready expression (`rdin`).
    pub rdin: ExprRef,
    /// 1-bit expression: an input is captured this cycle
    /// (`rdin ∧ action ≠ 0`, gated by clock enable).
    pub captured: ExprRef,
    /// 1-bit expression: an output is delivered this cycle
    /// (`out_valid ∧ rdh`, gated by clock enable).
    pub delivered: ExprRef,
}

fn count_width(n: usize) -> u32 {
    let mut w = 1;
    while (1usize << w) <= n {
        w += 1;
    }
    w
}

/// Synthesizes an accelerator from a spec and a datapath.
///
/// The datapath closure receives the captured `action` and `data`
/// expressions and must return the operation result, `out_width` bits
/// wide. It is evaluated *combinationally at capture time* and the result
/// travels down the pipeline — valid for the non-interfering accelerator
/// class the paper targets (each result depends only on its own input).
///
/// # Panics
///
/// Panics if the datapath returns an expression of the wrong width, or if
/// `options.broken_ce_stage` is out of range.
pub fn synthesize(
    spec: &AccelSpec,
    pool: &mut ExprPool,
    options: SynthOptions,
    datapath: impl FnOnce(&mut ExprPool, ExprRef, ExprRef) -> ExprRef,
) -> Lca {
    let mut ts = TransitionSystem::new(spec.name.clone());
    let action = ts.add_input(pool, "action", spec.action_width);
    let data = ts.add_input(pool, "data", spec.data_width);
    let rdh = ts.add_input(pool, "rdh", 1);
    let clock_enable = spec
        .has_clock_enable
        .then(|| ts.add_input(pool, "clock_enable", 1));

    let action_e = pool.var_expr(action);
    let data_e = pool.var_expr(data);
    let rdh_e = pool.var_expr(rdh);
    let ce_e = clock_enable.map(|v| pool.var_expr(v));
    let enabled = ce_e.unwrap_or_else(|| pool.true_());

    let ow = spec.out_width;
    let latency = spec.latency;
    let depth = spec.fifo_depth;
    let cw = count_width(latency + depth + 1);

    // --- Initiation-interval throttle -------------------------------
    let ii = spec.initiation_interval;
    let ii_ctr = if ii > 1 {
        Some(ts.add_register(pool, "ii_ctr", count_width(ii), 0))
    } else {
        None
    };
    let ii_ready = match ii_ctr {
        Some(c) => {
            let ce = pool.var_expr(c);
            let z = pool.lit(count_width(ii), 0);
            pool.eq(ce, z)
        }
        None => pool.true_(),
    };

    // --- Pipeline registers ------------------------------------------
    let stage_valid: Vec<VarId> = (0..latency)
        .map(|i| ts.add_register(pool, format!("pipe_v{i}"), 1, 0))
        .collect();
    let stage_value: Vec<VarId> = (0..latency)
        .map(|i| ts.add_register(pool, format!("pipe_d{i}"), ow, 0))
        .collect();

    // --- Output FIFO ---------------------------------------------------
    let fifo_data: Vec<VarId> = (0..depth)
        .map(|i| ts.add_register(pool, format!("ofifo_d{i}"), ow, 0))
        .collect();
    let fifo_count = ts.add_register(pool, "ofifo_cnt", cw, 0);
    let fifo_count_e = pool.var_expr(fifo_count);

    // --- In-flight credit & rdin ---------------------------------------
    // inflight = fifo_count + Σ stage_valid
    let mut inflight = fifo_count_e;
    for &v in &stage_valid {
        let ve = pool.var_expr(v);
        let vz = pool.zext(ve, cw);
        inflight = pool.add(inflight, vz);
    }
    let depth_lit = pool.lit(cw, depth as u64);
    let has_credit = if options.skip_credit_check {
        // Buggy: only checks the FIFO's *current* occupancy, ignoring
        // results still in the pipeline.
        pool.ult(fifo_count_e, depth_lit)
    } else {
        pool.ult(inflight, depth_lit)
    };
    let rdin = pool.and(ii_ready, has_credit);

    // --- Capture -----------------------------------------------------
    let zero_action = pool.lit(spec.action_width, 0);
    let action_valid = pool.ne(action_e, zero_action);
    let capture_raw = pool.and(rdin, action_valid);
    let captured = pool.and(capture_raw, enabled);

    // Datapath result, computed at capture time.
    let result = datapath(pool, action_e, data_e);
    assert!(
        pool.width(result) == ow,
        "datapath returned width {} but spec.out_width is {}",
        pool.width(result),
        ow
    );

    // --- Pipeline next-state -------------------------------------------
    // Whether a given stage register honours the clock enable.
    let stage_enabled = |pool: &mut ExprPool, i: usize| -> ExprRef {
        match options.broken_ce_stage {
            Some(b) if b == i => {
                assert!(b < latency, "broken_ce_stage {b} out of range");
                pool.true_() // this stage ignores clock_enable (Fig. 2 bug)
            }
            _ => enabled,
        }
    };
    for i in 0..latency {
        let en_i = stage_enabled(pool, i);
        let (shift_v, shift_d) = if i == 0 {
            // A broken-CE stage 0 still sees `capture_raw` (the upstream
            // controller is stalled but this register keeps clocking).
            (capture_raw, result)
        } else {
            let pv = pool.var_expr(stage_valid[i - 1]);
            let pd = pool.var_expr(stage_value[i - 1]);
            (pv, pd)
        };
        let cur_v = pool.var_expr(stage_valid[i]);
        let cur_d = pool.var_expr(stage_value[i]);
        let next_v = pool.ite(en_i, shift_v, cur_v);
        let next_d = pool.ite(en_i, shift_d, cur_d);
        ts.set_next(stage_valid[i], next_v);
        ts.set_next(stage_value[i], next_d);
    }

    // --- FIFO push/pop ---------------------------------------------------
    let exit_valid_raw = pool.var_expr(stage_valid[latency - 1]);
    let exit_value = pool.var_expr(stage_value[latency - 1]);
    let push = pool.and(exit_valid_raw, enabled);
    let zero_cnt = pool.lit(cw, 0);
    let out_valid_raw = pool.ne(fifo_count_e, zero_cnt);
    let pop = {
        let t = pool.and(out_valid_raw, rdh_e);
        pool.and(t, enabled)
    };
    // Shift-register FIFO: push at index `count` (after possible pop
    // compaction), pop from index 0.
    // next_count = count + push - pop (push dropped silently if full —
    // only reachable with skip_credit_check).
    let full = pool.uge(fifo_count_e, depth_lit);
    let push_ok = {
        let nf = pool.not(full);
        pool.and(push, nf)
    };
    let one_cnt = pool.lit(cw, 1);
    let cnt_after_pop = {
        let dec = pool.sub(fifo_count_e, one_cnt);
        pool.ite(pop, dec, fifo_count_e)
    };
    let cnt_next = {
        let inc = pool.add(cnt_after_pop, one_cnt);
        pool.ite(push_ok, inc, cnt_after_pop)
    };
    ts.set_next(fifo_count, cnt_next);
    // Data movement: if pop, everything shifts down; push lands at
    // position (count_after_pop).
    for i in 0..depth {
        let cur = pool.var_expr(fifo_data[i]);
        let from_above = if i + 1 < depth {
            pool.var_expr(fifo_data[i + 1])
        } else {
            cur
        };
        let shifted = pool.ite(pop, from_above, cur);
        let idx = pool.lit(cw, i as u64);
        let at_tail = pool.eq(cnt_after_pop, idx);
        let do_write = pool.and(push_ok, at_tail);
        let with_push = pool.ite(do_write, exit_value, shifted);
        let keep = pool.ite(enabled, with_push, cur);
        ts.set_next(fifo_data[i], keep);
    }
    if let Some(c) = ii_ctr {
        let w = count_width(ii);
        let ce2 = pool.var_expr(c);
        let z = pool.lit(w, 0);
        let one = pool.lit(w, 1);
        let iim1 = pool.lit(w, (ii - 1) as u64);
        let dec = pool.sub(ce2, one);
        let is_z = pool.eq(ce2, z);
        let dec_or_hold = pool.ite(is_z, z, dec);
        let reload = pool.ite(captured, iim1, dec_or_hold);
        let gated = pool.ite(enabled, reload, ce2);
        ts.set_next(c, gated);
    }

    // Gate fifo_count on clock enable too.
    {
        // Re-derive: when disabled, hold. (set_next replaces previous.)
        let held = pool.ite(enabled, cnt_next, fifo_count_e);
        ts.set_next(fifo_count, held);
    }

    // --- Outputs --------------------------------------------------------
    let head = pool.var_expr(fifo_data[0]);
    let zero_out = pool.lit(ow, 0);
    let out = pool.ite(out_valid_raw, head, zero_out);
    let mut forwarded_out = out;
    if options.forwarding_bug {
        // Corrupt the delivered value when delivery coincides with a new
        // capture: a realistic bypass-mux selection error.
        let clash = pool.and(captured, out_valid_raw);
        let xored = pool.xor(out, result);
        forwarded_out = pool.ite(clash, xored, out);
    }
    let delivered = {
        let t = pool.and(out_valid_raw, rdh_e);
        pool.and(t, enabled)
    };

    ts.add_output("out", forwarded_out);
    ts.add_output("out_valid", out_valid_raw);
    ts.add_output("rdin", rdin);
    ts.add_output("captured", captured);
    ts.add_output("delivered", delivered);

    Lca {
        ts,
        action,
        data,
        rdh,
        clock_enable,
        out: forwarded_out,
        out_valid: out_valid_raw,
        rdin,
        captured,
        delivered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqed_bitvec::Bv;
    use aqed_tsys::Simulator;

    fn drive(
        lca: &Lca,
        pool: &ExprPool,
        sim: &mut Simulator,
        action: u64,
        data: u64,
        rdh: bool,
        ce: bool,
    ) -> (Option<u64>, bool, bool) {
        let mut inputs = vec![
            (lca.action, Bv::new(pool.var_width(lca.action), action)),
            (lca.data, Bv::new(pool.var_width(lca.data), data)),
            (lca.rdh, Bv::from_bool(rdh)),
        ];
        if let Some(cev) = lca.clock_enable {
            inputs.push((cev, Bv::from_bool(ce)));
        }
        let rec = sim.step_with(&lca.ts, pool, &inputs);
        let ov = rec.output("out_valid").expect("out_valid").is_true();
        let rdin = rec.output("rdin").expect("rdin").is_true();
        let out = ov.then(|| rec.output("out").expect("out").to_u64());
        (out, ov && rdh, rdin)
    }

    #[test]
    fn single_op_round_trip() {
        let mut p = ExprPool::new();
        let spec = AccelSpec::new("inc", 2, 8, 8).with_latency(3);
        let lca = synthesize(&spec, &mut p, SynthOptions::default(), |pool, _a, d| {
            let one = pool.lit(8, 1);
            pool.add(d, one)
        });
        lca.ts.validate(&p).expect("valid");
        let mut sim = Simulator::new(&lca.ts, &p);
        let (out, _, rdin) = drive(&lca, &p, &mut sim, 1, 41, true, true);
        assert!(rdin, "fresh accelerator accepts input");
        assert!(out.is_none(), "latency 3: no output yet");
        let mut got = None;
        for _ in 0..5 {
            let (out, delivered, _) = drive(&lca, &p, &mut sim, 0, 0, true, true);
            if delivered {
                got = out;
                break;
            }
        }
        assert_eq!(got, Some(42));
    }

    #[test]
    fn outputs_in_capture_order() {
        let mut p = ExprPool::new();
        let spec = AccelSpec::new("dbl", 2, 8, 8)
            .with_latency(2)
            .with_fifo_depth(4);
        let lca = synthesize(&spec, &mut p, SynthOptions::default(), |pool, _a, d| {
            pool.add(d, d)
        });
        let mut sim = Simulator::new(&lca.ts, &p);
        // Send 3 ops back-to-back with the host not ready, then drain.
        for d in [5u64, 6, 7] {
            drive(&lca, &p, &mut sim, 1, d, false, true);
        }
        let mut outs = Vec::new();
        for _ in 0..10 {
            let (out, delivered, _) = drive(&lca, &p, &mut sim, 0, 0, true, true);
            if delivered {
                outs.push(out.expect("valid"));
            }
            if outs.len() == 3 {
                break;
            }
        }
        assert_eq!(outs, vec![10, 12, 14]);
    }

    #[test]
    fn backpressure_stalls_rdin() {
        let mut p = ExprPool::new();
        let spec = AccelSpec::new("idly", 2, 8, 8)
            .with_latency(1)
            .with_fifo_depth(2);
        let lca = synthesize(&spec, &mut p, SynthOptions::default(), |_pool, _a, d| d);
        let mut sim = Simulator::new(&lca.ts, &p);
        // Host never ready: after filling pipeline + fifo, rdin must drop.
        let mut rdin_seen = Vec::new();
        for d in 0..5u64 {
            let (_, _, rdin) = drive(&lca, &p, &mut sim, 1, d, false, true);
            rdin_seen.push(rdin);
        }
        assert!(rdin_seen[0]);
        assert!(!rdin_seen[4], "rdin must deassert when credits exhausted");
        // Draining restores rdin.
        let mut restored = false;
        for _ in 0..5 {
            let (_, _, rdin) = drive(&lca, &p, &mut sim, 0, 0, true, true);
            if rdin {
                restored = true;
            }
        }
        assert!(restored);
    }

    #[test]
    fn no_output_loss_under_random_traffic() {
        use std::collections::VecDeque;
        let mut p = ExprPool::new();
        let spec = AccelSpec::new("xor55", 2, 8, 8)
            .with_latency(2)
            .with_fifo_depth(2);
        let lca = synthesize(&spec, &mut p, SynthOptions::default(), |pool, _a, d| {
            let k = pool.lit(8, 0x55);
            pool.xor(d, k)
        });
        let mut sim = Simulator::new(&lca.ts, &p);
        let mut expected: VecDeque<u64> = VecDeque::new();
        let mut sent = 0u64;
        let mut lcg: u64 = 12345;
        let mut next_rand = || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lcg >> 33
        };
        for _ in 0..300 {
            let try_send = next_rand() % 2 == 0;
            let rdh = next_rand() % 3 != 0;
            let d = next_rand() % 256;
            // Peek rdin before stepping.
            let rdin_now = {
                let inputs = vec![
                    (lca.action, Bv::new(2, u64::from(try_send))),
                    (lca.data, Bv::new(8, d)),
                    (lca.rdh, Bv::from_bool(rdh)),
                ];
                sim.peek(&p, lca.rdin, &inputs).is_true()
            };
            let (out, delivered, _) = drive(&lca, &p, &mut sim, u64::from(try_send), d, rdh, true);
            if try_send && rdin_now {
                expected.push_back(d ^ 0x55);
                sent += 1;
            }
            if delivered {
                let want = expected.pop_front().expect("spurious output");
                assert_eq!(out, Some(want));
            }
        }
        assert!(sent > 30, "traffic generator actually sent inputs");
        // Drain the rest.
        for _ in 0..20 {
            let (out, delivered, _) = drive(&lca, &p, &mut sim, 0, 0, true, true);
            if delivered {
                let want = expected.pop_front().expect("spurious output");
                assert_eq!(out, Some(want));
            }
        }
        assert!(expected.is_empty(), "all captured inputs produced outputs");
    }

    #[test]
    fn initiation_interval_throttles() {
        let mut p = ExprPool::new();
        let spec = AccelSpec::new("slow", 2, 8, 8)
            .with_latency(1)
            .with_initiation_interval(3)
            .with_fifo_depth(4);
        let lca = synthesize(&spec, &mut p, SynthOptions::default(), |_pool, _a, d| d);
        let mut sim = Simulator::new(&lca.ts, &p);
        let mut captures = 0;
        for _ in 0..9 {
            let inputs = vec![
                (lca.action, Bv::new(2, 1)),
                (lca.data, Bv::new(8, 1)),
                (lca.rdh, Bv::from_bool(true)),
            ];
            let cap = sim.peek(&p, lca.captured, &inputs).is_true();
            sim.step_with(&lca.ts, &p, &inputs);
            captures += u32::from(cap);
        }
        // With II = 3, at most ⌈9 / 3⌉ = 3 captures.
        assert_eq!(captures, 3);
    }

    #[test]
    fn clock_enable_freezes_design() {
        let mut p = ExprPool::new();
        let spec = AccelSpec::new("frozen", 2, 8, 8)
            .with_latency(2)
            .with_clock_enable();
        let lca = synthesize(&spec, &mut p, SynthOptions::default(), |_pool, _a, d| d);
        let mut sim = Simulator::new(&lca.ts, &p);
        drive(&lca, &p, &mut sim, 1, 9, true, true);
        // Freeze for 10 cycles: nothing must come out.
        for _ in 0..10 {
            let (_, delivered, _) = drive(&lca, &p, &mut sim, 0, 0, true, false);
            assert!(!delivered, "no delivery while frozen");
        }
        // Unfreeze: output appears.
        let mut got = None;
        for _ in 0..5 {
            let (out, delivered, _) = drive(&lca, &p, &mut sim, 0, 0, true, true);
            if delivered {
                got = out;
                break;
            }
        }
        assert_eq!(got, Some(9));
    }

    #[test]
    fn broken_ce_stage_loses_or_corrupts_results() {
        // With stage 0 ignoring clock_enable, freezing the design right
        // after a capture lets the pipeline swallow the in-flight result.
        let mut p = ExprPool::new();
        let spec = AccelSpec::new("ce_bug", 2, 8, 8)
            .with_latency(2)
            .with_clock_enable();
        let opts = SynthOptions {
            broken_ce_stage: Some(1),
            ..SynthOptions::default()
        };
        let lca = synthesize(&spec, &mut p, opts, |_pool, _a, d| d);
        let mut sim = Simulator::new(&lca.ts, &p);
        // Capture 42, then freeze one cycle (stage1 keeps clocking and
        // swallows garbage), then run.
        drive(&lca, &p, &mut sim, 1, 42, true, true);
        drive(&lca, &p, &mut sim, 0, 0, true, false);
        let mut outs = Vec::new();
        for _ in 0..6 {
            let (out, delivered, _) = drive(&lca, &p, &mut sim, 0, 0, true, true);
            if delivered {
                outs.push(out.expect("valid"));
            }
        }
        // The healthy design would deliver exactly [42]; the bug makes the
        // observable behaviour differ (lost, duplicated or reordered).
        assert_ne!(outs, vec![42], "bug must perturb the output stream");
    }

    #[test]
    fn skip_credit_check_drops_outputs() {
        let mut p = ExprPool::new();
        let spec = AccelSpec::new("overflow", 2, 8, 8)
            .with_latency(2)
            .with_fifo_depth(1);
        let opts = SynthOptions {
            skip_credit_check: true,
            ..SynthOptions::default()
        };
        let lca = synthesize(&spec, &mut p, opts, |_pool, _a, d| d);
        let mut sim = Simulator::new(&lca.ts, &p);
        // Stuff inputs with the host stalled; credits are not checked so
        // the design accepts more than it can hold.
        let mut accepted = 0;
        for d in 1..=4u64 {
            let inputs = vec![
                (lca.action, Bv::new(2, 1)),
                (lca.data, Bv::new(8, d)),
                (lca.rdh, Bv::from_bool(false)),
            ];
            let cap = sim.peek(&p, lca.captured, &inputs).is_true();
            sim.step_with(&lca.ts, &p, &inputs);
            accepted += u64::from(cap);
        }
        // Drain.
        let mut outs = 0;
        for _ in 0..20 {
            let (_, delivered, _) = drive(&lca, &p, &mut sim, 0, 0, true, true);
            outs += u64::from(delivered);
        }
        assert!(
            accepted > outs,
            "accepted {accepted} inputs but delivered {outs}: outputs dropped"
        );
    }

    #[test]
    fn forwarding_bug_corrupts_under_back_to_back_traffic() {
        let mut p = ExprPool::new();
        let spec = AccelSpec::new("fwd_bug", 2, 8, 8).with_latency(1);
        let opts = SynthOptions {
            forwarding_bug: true,
            ..SynthOptions::default()
        };
        let lca = synthesize(&spec, &mut p, opts, |_pool, _a, d| d);
        let mut sim = Simulator::new(&lca.ts, &p);
        // Three back-to-back captures with host ready: by the third one,
        // a delivery coincides with a capture → corrupted value.
        let mut outs = Vec::new();
        for d in [10u64, 20, 30] {
            let (out, delivered, _) = drive(&lca, &p, &mut sim, 1, d, true, true);
            if delivered {
                outs.push(out.expect("valid"));
            }
        }
        for _ in 0..5 {
            let (out, delivered, _) = drive(&lca, &p, &mut sim, 0, 0, true, true);
            if delivered {
                outs.push(out.expect("valid"));
            }
        }
        // The identity datapath should deliver exactly [10, 20, 30].
        assert_ne!(outs, vec![10, 20, 30], "bug must corrupt the stream");
    }

    #[test]
    fn spec_builder_validation() {
        let spec = AccelSpec::new("s", 1, 8, 16)
            .with_latency(4)
            .with_initiation_interval(2)
            .with_fifo_depth(3)
            .with_clock_enable();
        assert_eq!(spec.latency, 4);
        assert_eq!(spec.initiation_interval, 2);
        assert_eq!(spec.fifo_depth, 3);
        assert!(spec.has_clock_enable);
    }

    #[test]
    #[should_panic(expected = "latency must be at least 1")]
    fn zero_latency_rejected() {
        let _ = AccelSpec::new("s", 1, 8, 8).with_latency(0);
    }

    #[test]
    #[should_panic(expected = "datapath returned width")]
    fn wrong_datapath_width_rejected() {
        let mut p = ExprPool::new();
        let spec = AccelSpec::new("bad", 2, 8, 16);
        let _ = synthesize(&spec, &mut p, SynthOptions::default(), |_pool, _a, d| d);
    }

    #[test]
    fn count_width_covers_range() {
        assert_eq!(count_width(1), 1);
        assert_eq!(count_width(2), 2);
        assert_eq!(count_width(3), 2);
        assert_eq!(count_width(4), 3);
        assert_eq!(count_width(7), 3);
        assert_eq!(count_width(8), 4);
    }
}
