//! Tseitin bit-blaster: compiles `aqed-expr` word-level expressions into
//! CNF over `aqed-sat` literals.
//!
//! A [`BitBlaster`] maintains a cache from expression nodes to vectors of
//! solver literals (least-significant bit first), so shared subgraphs are
//! encoded exactly once — including across multiple [`BitBlaster::blast`]
//! calls, which is what makes incremental BMC cheap.
//!
//! Circuit encodings are the textbook ones used by hardware back-ends:
//! ripple-carry adders, shift-and-add multipliers, restoring dividers,
//! logarithmic barrel shifters, and borrow-chain comparators.
//!
//! Every method is generic over [`SatBackend`], so the same encoder
//! drives the in-tree CDCL solver, the DIMACS-logging backend, or any
//! future implementation. A blaster is tied to one backend instance: pass
//! the same backend to every call (a fresh backend with an old blaster
//! produces invalid CNF). The encoding survives budget-interrupted
//! solves — a backend that returns [`SolveResult::Unknown`](aqed_sat::SolveResult)
//! under a resource budget can be re-solved with a fresh budget without
//! re-blasting anything.
//!
//! # Examples
//!
//! ```
//! use aqed_bitblast::BitBlaster;
//! use aqed_expr::{ExprPool, VarKind};
//! use aqed_sat::{SolveResult, Solver};
//!
//! let mut p = ExprPool::new();
//! let x = p.var("x", 8, VarKind::Input);
//! let xe = p.var_expr(x);
//! let c128 = p.lit(8, 128);
//! let c228 = p.lit(8, 228);
//! let sum = p.add(xe, xe);
//! // Does x + x == 228 with x < 128 have a solution? (x = 114)
//! let eq = p.eq(sum, c228);
//! let lt = p.ult(xe, c128);
//! let both = p.and(eq, lt);
//!
//! let mut solver = Solver::new();
//! let mut bb = BitBlaster::new();
//! bb.assert_true(&p, both, &mut solver);
//! assert_eq!(solver.solve(), SolveResult::Sat);
//! let x_val = bb.model_value(&p, xe, &solver).expect("model available");
//! assert_eq!(x_val.to_u64() * 2 % 256, 228);
//! ```

use aqed_bitvec::Bv;
use aqed_expr::{BinOp, ExprPool, ExprRef, Node, UnOp, VarId};
use aqed_sat::{Lit, SatBackend};
use std::collections::HashMap;

/// Compiles word-level expressions to CNF, caching every encoded node.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone, Default)]
pub struct BitBlaster {
    cache: HashMap<ExprRef, Vec<Lit>>,
    var_bits: HashMap<VarId, Vec<Lit>>,
    const_true: Option<Lit>,
}

impl BitBlaster {
    /// Creates an empty blaster.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of expression nodes encoded so far.
    #[must_use]
    pub fn cached_nodes(&self) -> usize {
        self.cache.len()
    }

    /// The bits already encoded for `e` (LSB first), or `None` if the
    /// expression has not been blasted yet. Unlike [`BitBlaster::blast`]
    /// this never adds clauses — callers use it to enumerate a known
    /// interface (e.g. the BMC frame boundary, which a preprocessing
    /// solver must keep intact).
    #[must_use]
    pub fn cached_bits(&self, e: ExprRef) -> Option<&[Lit]> {
        self.cache.get(&e).map(Vec::as_slice)
    }

    /// A literal constrained to be true (created on first use).
    pub fn lit_true<B: SatBackend>(&mut self, solver: &mut B) -> Lit {
        match self.const_true {
            Some(l) => l,
            None => {
                let v = solver.new_var();
                solver.add_clause(&[v.pos()]);
                self.const_true = Some(v.pos());
                v.pos()
            }
        }
    }

    /// A literal constrained to be false.
    pub fn lit_false<B: SatBackend>(&mut self, solver: &mut B) -> Lit {
        !self.lit_true(solver)
    }

    /// The solver literals backing variable `v` (LSB first), allocating
    /// them on first use.
    pub fn var_lits<B: SatBackend>(
        &mut self,
        pool: &ExprPool,
        v: VarId,
        solver: &mut B,
    ) -> Vec<Lit> {
        if let Some(bits) = self.var_bits.get(&v) {
            return bits.clone();
        }
        let bits: Vec<Lit> = (0..pool.var_width(v))
            .map(|_| solver.new_var().pos())
            .collect();
        self.var_bits.insert(v, bits.clone());
        bits
    }

    /// Encodes `e`, returning its bits (LSB first). All necessary clauses
    /// are added to `solver`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not from `pool`.
    pub fn blast<B: SatBackend>(
        &mut self,
        pool: &ExprPool,
        e: ExprRef,
        solver: &mut B,
    ) -> Vec<Lit> {
        if let Some(bits) = self.cache.get(&e) {
            return bits.clone();
        }
        // Iterative post-order encoding.
        let mut stack = vec![e];
        while let Some(&cur) = stack.last() {
            if self.cache.contains_key(&cur) {
                stack.pop();
                continue;
            }
            let mut pending = false;
            {
                let mut need = |c: ExprRef| {
                    if !self.cache.contains_key(&c) {
                        stack.push(c);
                        pending = true;
                    }
                };
                match *pool.node(cur) {
                    Node::Const(_) | Node::Var(_) => {}
                    Node::Unary(_, a) => need(a),
                    Node::Binary(_, a, b) => {
                        need(a);
                        need(b);
                    }
                    Node::Ite { cond, then_, else_ } => {
                        need(cond);
                        need(then_);
                        need(else_);
                    }
                    Node::Extract { arg, .. } | Node::Extend { arg, .. } => need(arg),
                }
            }
            if pending {
                continue;
            }
            let bits = self.encode_node(pool, cur, solver);
            debug_assert_eq!(bits.len() as u32, pool.width(cur));
            self.cache.insert(cur, bits);
            stack.pop();
        }
        self.cache[&e].clone()
    }

    /// Encodes the 1-bit expression `e` and adds a unit clause forcing it
    /// true.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not 1 bit wide.
    pub fn assert_true<B: SatBackend>(&mut self, pool: &ExprPool, e: ExprRef, solver: &mut B) {
        assert_eq!(pool.width(e), 1, "assert_true requires a 1-bit expression");
        let bits = self.blast(pool, e, solver);
        solver.add_clause(&[bits[0]]);
    }

    /// Encodes the 1-bit expression `e` and returns the literal
    /// representing it (useful as an activation/assumption literal).
    ///
    /// # Panics
    ///
    /// Panics if `e` is not 1 bit wide.
    pub fn literal<B: SatBackend>(&mut self, pool: &ExprPool, e: ExprRef, solver: &mut B) -> Lit {
        assert_eq!(pool.width(e), 1, "literal requires a 1-bit expression");
        self.blast(pool, e, solver)[0]
    }

    /// Reads the value of a previously blasted expression from the
    /// solver's current model. Returns `None` if the solver holds no model
    /// or `e` was never blasted.
    #[must_use]
    pub fn model_value<B: SatBackend>(
        &self,
        pool: &ExprPool,
        e: ExprRef,
        solver: &B,
    ) -> Option<Bv> {
        let bits = self.cache.get(&e)?;
        let mut val = 0u64;
        for (i, &b) in bits.iter().enumerate() {
            if solver.value(b)? {
                val |= 1 << i;
            }
        }
        Some(Bv::new(pool.width(e), val))
    }

    /// Reads the value of a variable from the solver's current model.
    /// Returns `None` if no model is available or the variable was never
    /// allocated.
    #[must_use]
    pub fn model_var<B: SatBackend>(&self, pool: &ExprPool, v: VarId, solver: &B) -> Option<Bv> {
        let bits = self.var_bits.get(&v)?;
        let mut val = 0u64;
        for (i, &b) in bits.iter().enumerate() {
            if solver.value(b)? {
                val |= 1 << i;
            }
        }
        Some(Bv::new(pool.var_width(v), val))
    }

    // ------------------------------------------------------------------
    // Gate-level primitives
    // ------------------------------------------------------------------

    fn is_const_true(&self, l: Lit) -> bool {
        self.const_true == Some(l)
    }

    fn is_const_false(&self, l: Lit) -> bool {
        self.const_true == Some(!l)
    }

    fn gate_and<B: SatBackend>(&mut self, a: Lit, b: Lit, solver: &mut B) -> Lit {
        if self.is_const_false(a) || self.is_const_false(b) {
            return self.lit_false(solver);
        }
        if self.is_const_true(a) {
            return b;
        }
        if self.is_const_true(b) {
            return a;
        }
        if a == b {
            return a;
        }
        if a == !b {
            return self.lit_false(solver);
        }
        let c = solver.new_var().pos();
        // Tseitin clauses go through the small-clause fast paths: no
        // intermediate Vec, and the two-literal clauses land directly in
        // the solver's inlined binary watch lists.
        solver.add_ternary(!a, !b, c);
        solver.add_binary(a, !c);
        solver.add_binary(b, !c);
        c
    }

    fn gate_or<B: SatBackend>(&mut self, a: Lit, b: Lit, solver: &mut B) -> Lit {
        let n = self.gate_and(!a, !b, solver);
        !n
    }

    fn gate_xor<B: SatBackend>(&mut self, a: Lit, b: Lit, solver: &mut B) -> Lit {
        if self.is_const_false(a) {
            return b;
        }
        if self.is_const_false(b) {
            return a;
        }
        if self.is_const_true(a) {
            return !b;
        }
        if self.is_const_true(b) {
            return !a;
        }
        if a == b {
            return self.lit_false(solver);
        }
        if a == !b {
            return self.lit_true(solver);
        }
        let c = solver.new_var().pos();
        solver.add_ternary(!a, !b, !c);
        solver.add_ternary(a, b, !c);
        solver.add_ternary(a, !b, c);
        solver.add_ternary(!a, b, c);
        c
    }

    /// `s ? a : b`
    fn gate_mux<B: SatBackend>(&mut self, s: Lit, a: Lit, b: Lit, solver: &mut B) -> Lit {
        if self.is_const_true(s) {
            return a;
        }
        if self.is_const_false(s) {
            return b;
        }
        if a == b {
            return a;
        }
        let c = solver.new_var().pos();
        solver.add_ternary(!s, !a, c);
        solver.add_ternary(!s, a, !c);
        solver.add_ternary(s, !b, c);
        solver.add_ternary(s, b, !c);
        c
    }

    /// Full adder returning (sum, carry-out).
    fn full_adder<B: SatBackend>(
        &mut self,
        a: Lit,
        b: Lit,
        cin: Lit,
        solver: &mut B,
    ) -> (Lit, Lit) {
        let axb = self.gate_xor(a, b, solver);
        let sum = self.gate_xor(axb, cin, solver);
        let ab = self.gate_and(a, b, solver);
        let axb_c = self.gate_and(axb, cin, solver);
        let cout = self.gate_or(ab, axb_c, solver);
        (sum, cout)
    }

    fn ripple_add<B: SatBackend>(
        &mut self,
        a: &[Lit],
        b: &[Lit],
        cin: Lit,
        solver: &mut B,
    ) -> Vec<Lit> {
        let mut out = Vec::with_capacity(a.len());
        let mut carry = cin;
        for i in 0..a.len() {
            let (s, c) = self.full_adder(a[i], b[i], carry, solver);
            out.push(s);
            carry = c;
        }
        out
    }

    fn negate<B: SatBackend>(&mut self, a: &[Lit], solver: &mut B) -> Vec<Lit> {
        let inv: Vec<Lit> = a.iter().map(|&l| !l).collect();
        let zero: Vec<Lit> = vec![self.lit_false(solver); a.len()];
        let one = self.lit_true(solver);
        self.ripple_add(&inv, &zero, one, solver)
    }

    fn const_bits<B: SatBackend>(&mut self, v: Bv, solver: &mut B) -> Vec<Lit> {
        let t = self.lit_true(solver);
        (0..v.width())
            .map(|i| if v.bit(i) { t } else { !t })
            .collect()
    }

    /// Unsigned `a < b` via a priority chain from LSB to MSB.
    fn cmp_ult<B: SatBackend>(&mut self, a: &[Lit], b: &[Lit], solver: &mut B) -> Lit {
        let mut lt = self.lit_false(solver);
        for i in 0..a.len() {
            // lt_i = (¬a_i ∧ b_i) ∨ ((a_i == b_i) ∧ lt_{i-1})
            let nb = self.gate_and(!a[i], b[i], solver);
            let diff = self.gate_xor(a[i], b[i], solver);
            let keep = self.gate_and(!diff, lt, solver);
            lt = self.gate_or(nb, keep, solver);
        }
        lt
    }

    fn cmp_eq<B: SatBackend>(&mut self, a: &[Lit], b: &[Lit], solver: &mut B) -> Lit {
        let mut acc = self.lit_true(solver);
        for i in 0..a.len() {
            let x = self.gate_xor(a[i], b[i], solver);
            acc = self.gate_and(acc, !x, solver);
        }
        acc
    }

    fn mux_word<B: SatBackend>(
        &mut self,
        s: Lit,
        a: &[Lit],
        b: &[Lit],
        solver: &mut B,
    ) -> Vec<Lit> {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| self.gate_mux(s, x, y, solver))
            .collect()
    }

    /// Barrel shifter. `kind`: 0 = shl, 1 = lshr, 2 = ashr.
    fn barrel_shift<B: SatBackend>(
        &mut self,
        a: &[Lit],
        amount: &[Lit],
        kind: u8,
        solver: &mut B,
    ) -> Vec<Lit> {
        let w = a.len();
        let fill = match kind {
            2 => a[w - 1],
            _ => self.lit_false(solver),
        };
        // Number of stages: ceil(log2(w)); a 1-bit vector needs none.
        let stages = if w <= 1 {
            0
        } else {
            (usize::BITS - (w - 1).leading_zeros()) as usize
        };
        let mut cur: Vec<Lit> = a.to_vec();
        for (s, &sel) in amount.iter().enumerate().take(stages) {
            let dist = 1usize << s;
            let shifted: Vec<Lit> = (0..w)
                .map(|i| match kind {
                    0 => {
                        if i >= dist {
                            cur[i - dist]
                        } else {
                            fill
                        }
                    }
                    _ => {
                        if i + dist < w {
                            cur[i + dist]
                        } else {
                            fill
                        }
                    }
                })
                .collect();
            cur = self.mux_word(sel, &shifted, &cur, solver);
        }
        // Any set amount bit at position >= stages saturates the shift —
        // including the `dist >= w` case within the staged range.
        let mut overflow = self.lit_false(solver);
        for (s, &hb) in amount.iter().enumerate() {
            if s >= 63 || (1u64 << s) >= w as u64 {
                overflow = self.gate_or(overflow, hb, solver);
            }
        }
        let all_fill = vec![fill; w];
        self.mux_word(overflow, &all_fill, &cur, solver)
    }

    /// Shift-and-add multiplier truncated to the operand width.
    fn multiply<B: SatBackend>(&mut self, a: &[Lit], b: &[Lit], solver: &mut B) -> Vec<Lit> {
        let w = a.len();
        let f = self.lit_false(solver);
        let mut acc = vec![f; w];
        for i in 0..w {
            // addend = b_i ? (a << i) : 0, truncated to w bits
            let addend: Vec<Lit> = (0..w)
                .map(|j| {
                    if j >= i {
                        self.gate_and(a[j - i], b[i], solver)
                    } else {
                        f
                    }
                })
                .collect();
            acc = self.ripple_add(&acc, &addend, f, solver);
        }
        acc
    }

    /// Restoring division. Returns (quotient, remainder) with the
    /// SMT-LIB zero-divisor convention.
    fn divide<B: SatBackend>(
        &mut self,
        a: &[Lit],
        b: &[Lit],
        solver: &mut B,
    ) -> (Vec<Lit>, Vec<Lit>) {
        let w = a.len();
        let f = self.lit_false(solver);
        let t = self.lit_true(solver);
        let mut rem: Vec<Lit> = vec![f; w];
        let mut quo: Vec<Lit> = vec![f; w];
        for i in (0..w).rev() {
            // rem = (rem << 1) | a_i
            let mut shifted = Vec::with_capacity(w);
            shifted.push(a[i]);
            shifted.extend_from_slice(&rem[..w - 1]);
            rem = shifted;
            // if rem >= b: rem -= b, q_i = 1
            let lt = self.cmp_ult(&rem, b, solver);
            let ge = !lt;
            let nb = self.negate(b, solver);
            let diff = self.ripple_add(&rem, &nb, f, solver);
            rem = self.mux_word(ge, &diff, &rem, solver);
            quo[i] = ge;
        }
        // Zero divisor: quotient = all ones, remainder = dividend.
        let zero = vec![f; w];
        let dz = self.cmp_eq(b, &zero, solver);
        let ones = vec![t; w];
        let quo = self.mux_word(dz, &ones, &quo, solver);
        let rem = self.mux_word(dz, a, &rem, solver);
        (quo, rem)
    }

    fn encode_node<B: SatBackend>(
        &mut self,
        pool: &ExprPool,
        e: ExprRef,
        solver: &mut B,
    ) -> Vec<Lit> {
        match *pool.node(e) {
            Node::Const(v) => self.const_bits(v, solver),
            Node::Var(v) => self.var_lits(pool, v, solver),
            Node::Unary(op, a) => {
                let ab = self.cache[&a].clone();
                match op {
                    UnOp::Not => ab.iter().map(|&l| !l).collect(),
                    UnOp::Neg => self.negate(&ab, solver),
                    UnOp::RedOr => {
                        let mut acc = self.lit_false(solver);
                        for &l in &ab {
                            acc = self.gate_or(acc, l, solver);
                        }
                        vec![acc]
                    }
                    UnOp::RedAnd => {
                        let mut acc = self.lit_true(solver);
                        for &l in &ab {
                            acc = self.gate_and(acc, l, solver);
                        }
                        vec![acc]
                    }
                    UnOp::RedXor => {
                        let mut acc = self.lit_false(solver);
                        for &l in &ab {
                            acc = self.gate_xor(acc, l, solver);
                        }
                        vec![acc]
                    }
                }
            }
            Node::Binary(op, a, b) => {
                let ab = self.cache[&a].clone();
                let bb = self.cache[&b].clone();
                match op {
                    BinOp::And => ab
                        .iter()
                        .zip(&bb)
                        .map(|(&x, &y)| self.gate_and(x, y, solver))
                        .collect(),
                    BinOp::Or => ab
                        .iter()
                        .zip(&bb)
                        .map(|(&x, &y)| self.gate_or(x, y, solver))
                        .collect(),
                    BinOp::Xor => ab
                        .iter()
                        .zip(&bb)
                        .map(|(&x, &y)| self.gate_xor(x, y, solver))
                        .collect(),
                    BinOp::Add => {
                        let f = self.lit_false(solver);
                        self.ripple_add(&ab, &bb, f, solver)
                    }
                    BinOp::Sub => {
                        let inv: Vec<Lit> = bb.iter().map(|&l| !l).collect();
                        let t = self.lit_true(solver);
                        self.ripple_add(&ab, &inv, t, solver)
                    }
                    BinOp::Mul => self.multiply(&ab, &bb, solver),
                    BinOp::Udiv => self.divide(&ab, &bb, solver).0,
                    BinOp::Urem => self.divide(&ab, &bb, solver).1,
                    BinOp::Shl => self.barrel_shift(&ab, &bb, 0, solver),
                    BinOp::Lshr => self.barrel_shift(&ab, &bb, 1, solver),
                    BinOp::Ashr => self.barrel_shift(&ab, &bb, 2, solver),
                    BinOp::Eq => vec![self.cmp_eq(&ab, &bb, solver)],
                    BinOp::Ult => vec![self.cmp_ult(&ab, &bb, solver)],
                    BinOp::Ule => {
                        let gt = self.cmp_ult(&bb, &ab, solver);
                        vec![!gt]
                    }
                    BinOp::Slt => {
                        // Flip the sign bits and compare unsigned.
                        let mut af = ab.clone();
                        let mut bf = bb.clone();
                        let n = af.len();
                        af[n - 1] = !af[n - 1];
                        bf[n - 1] = !bf[n - 1];
                        vec![self.cmp_ult(&af, &bf, solver)]
                    }
                    BinOp::Sle => {
                        let mut af = ab.clone();
                        let mut bf = bb.clone();
                        let n = af.len();
                        af[n - 1] = !af[n - 1];
                        bf[n - 1] = !bf[n - 1];
                        let gt = self.cmp_ult(&bf, &af, solver);
                        vec![!gt]
                    }
                    BinOp::Concat => {
                        // a is the high part.
                        let mut bits = bb.clone();
                        bits.extend_from_slice(&ab);
                        bits
                    }
                }
            }
            Node::Ite { cond, then_, else_ } => {
                let c = self.cache[&cond][0];
                let tb = self.cache[&then_].clone();
                let eb = self.cache[&else_].clone();
                self.mux_word(c, &tb, &eb, solver)
            }
            Node::Extract { hi, lo, arg } => {
                let ab = &self.cache[&arg];
                ab[lo as usize..=hi as usize].to_vec()
            }
            Node::Extend { signed, width, arg } => {
                let ab = self.cache[&arg].clone();
                let fill = if signed {
                    *ab.last().expect("nonempty")
                } else {
                    self.lit_false(solver)
                };
                let mut bits = ab;
                bits.resize(width as usize, fill);
                bits
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqed_expr::VarKind;
    use aqed_sat::{SolveResult, Solver};

    /// Checks that a blasted binary operation agrees with `Bv` semantics
    /// for all pairs of `width`-bit inputs.
    fn exhaustive_binop(
        width: u32,
        build: impl Fn(&mut ExprPool, ExprRef, ExprRef) -> ExprRef,
        reference: impl Fn(Bv, Bv) -> Bv,
    ) {
        let mut p = ExprPool::new();
        let a = p.var("a", width, VarKind::Input);
        let b = p.var("b", width, VarKind::Input);
        let ae = p.var_expr(a);
        let be = p.var_expr(b);
        let out = build(&mut p, ae, be);
        let mut solver = Solver::new();
        let mut bb = BitBlaster::new();
        let _ = bb.blast(&p, out, &mut solver);
        let abits = bb.var_lits(&p, a, &mut solver);
        let bbits = bb.var_lits(&p, b, &mut solver);
        for x in 0..(1u64 << width) {
            for y in 0..(1u64 << width) {
                let mut assumptions = Vec::new();
                for (i, &l) in abits.iter().enumerate() {
                    assumptions.push(if (x >> i) & 1 == 1 { l } else { !l });
                }
                for (i, &l) in bbits.iter().enumerate() {
                    assumptions.push(if (y >> i) & 1 == 1 { l } else { !l });
                }
                assert_eq!(solver.solve_with(&assumptions), SolveResult::Sat);
                let got = bb.model_value(&p, out, &solver).expect("model");
                let want = reference(Bv::new(width, x), Bv::new(width, y));
                assert_eq!(got, want, "op({x}, {y}) at width {width}");
            }
        }
    }

    #[test]
    fn add_matches() {
        exhaustive_binop(3, |p, a, b| p.add(a, b), |x, y| x.add(y));
    }

    #[test]
    fn sub_matches() {
        exhaustive_binop(3, |p, a, b| p.sub(a, b), |x, y| x.sub(y));
    }

    #[test]
    fn mul_matches() {
        exhaustive_binop(3, |p, a, b| p.mul(a, b), |x, y| x.mul(y));
    }

    #[test]
    fn udiv_matches() {
        exhaustive_binop(3, |p, a, b| p.udiv(a, b), |x, y| x.udiv(y));
    }

    #[test]
    fn urem_matches() {
        exhaustive_binop(3, |p, a, b| p.urem(a, b), |x, y| x.urem(y));
    }

    #[test]
    fn bitwise_matches() {
        exhaustive_binop(3, |p, a, b| p.and(a, b), |x, y| x.and(y));
        exhaustive_binop(3, |p, a, b| p.or(a, b), |x, y| x.or(y));
        exhaustive_binop(3, |p, a, b| p.xor(a, b), |x, y| x.xor(y));
    }

    #[test]
    fn shifts_match() {
        exhaustive_binop(4, |p, a, b| p.shl(a, b), |x, y| x.shl(y));
        exhaustive_binop(4, |p, a, b| p.lshr(a, b), |x, y| x.lshr(y));
        exhaustive_binop(4, |p, a, b| p.ashr(a, b), |x, y| x.ashr(y));
        // Non-power-of-two width exercises the saturation logic.
        exhaustive_binop(5, |p, a, b| p.shl(a, b), |x, y| x.shl(y));
        exhaustive_binop(5, |p, a, b| p.ashr(a, b), |x, y| x.ashr(y));
    }

    #[test]
    fn comparisons_match() {
        exhaustive_binop(3, |p, a, b| p.eq(a, b), |x, y| Bv::from_bool(x == y));
        exhaustive_binop(3, |p, a, b| p.ult(a, b), |x, y| Bv::from_bool(x.ult(y)));
        exhaustive_binop(3, |p, a, b| p.ule(a, b), |x, y| Bv::from_bool(x.ule(y)));
        exhaustive_binop(3, |p, a, b| p.slt(a, b), |x, y| Bv::from_bool(x.slt(y)));
        exhaustive_binop(3, |p, a, b| p.sle(a, b), |x, y| Bv::from_bool(x.sle(y)));
    }

    #[test]
    fn concat_matches() {
        exhaustive_binop(3, |p, a, b| p.concat(a, b), |x, y| x.concat(y));
    }

    fn exhaustive_unop(
        width: u32,
        build: impl Fn(&mut ExprPool, ExprRef) -> ExprRef,
        reference: impl Fn(Bv) -> Bv,
    ) {
        let mut p = ExprPool::new();
        let a = p.var("a", width, VarKind::Input);
        let ae = p.var_expr(a);
        let out = build(&mut p, ae);
        let mut solver = Solver::new();
        let mut bb = BitBlaster::new();
        let _ = bb.blast(&p, out, &mut solver);
        let abits = bb.var_lits(&p, a, &mut solver);
        for x in 0..(1u64 << width) {
            let assumptions: Vec<Lit> = abits
                .iter()
                .enumerate()
                .map(|(i, &l)| if (x >> i) & 1 == 1 { l } else { !l })
                .collect();
            assert_eq!(solver.solve_with(&assumptions), SolveResult::Sat);
            let got = bb.model_value(&p, out, &solver).expect("model");
            assert_eq!(got, reference(Bv::new(width, x)), "op({x})");
        }
    }

    #[test]
    fn unary_matches() {
        exhaustive_unop(4, |p, a| p.not(a), |x| x.not());
        exhaustive_unop(4, |p, a| p.neg(a), |x| x.neg());
        exhaustive_unop(4, |p, a| p.redor(a), |x| x.redor());
        exhaustive_unop(4, |p, a| p.redand(a), |x| x.redand());
        exhaustive_unop(4, |p, a| p.redxor(a), |x| x.redxor());
    }

    #[test]
    fn extract_extend_match() {
        exhaustive_unop(5, |p, a| p.extract(a, 3, 1), |x| x.extract(3, 1));
        exhaustive_unop(4, |p, a| p.zext(a, 7), |x| x.zext(7));
        exhaustive_unop(4, |p, a| p.sext(a, 7), |x| x.sext(7));
    }

    #[test]
    fn ite_matches() {
        let mut p = ExprPool::new();
        let c = p.var("c", 1, VarKind::Input);
        let a = p.var("a", 3, VarKind::Input);
        let b = p.var("b", 3, VarKind::Input);
        let ce = p.var_expr(c);
        let ae = p.var_expr(a);
        let be = p.var_expr(b);
        let out = p.ite(ce, ae, be);
        let mut solver = Solver::new();
        let mut bb = BitBlaster::new();
        let _ = bb.blast(&p, out, &mut solver);
        let cbit = bb.var_lits(&p, c, &mut solver)[0];
        let abits = bb.var_lits(&p, a, &mut solver);
        let bbits = bb.var_lits(&p, b, &mut solver);
        for cv in [false, true] {
            for x in 0..8u64 {
                for y in 0..8u64 {
                    let mut assumptions = vec![if cv { cbit } else { !cbit }];
                    for (i, &l) in abits.iter().enumerate() {
                        assumptions.push(if (x >> i) & 1 == 1 { l } else { !l });
                    }
                    for (i, &l) in bbits.iter().enumerate() {
                        assumptions.push(if (y >> i) & 1 == 1 { l } else { !l });
                    }
                    assert_eq!(solver.solve_with(&assumptions), SolveResult::Sat);
                    let got = bb.model_value(&p, out, &solver).expect("model");
                    assert_eq!(got.to_u64(), if cv { x } else { y });
                }
            }
        }
    }

    #[test]
    fn cache_shares_across_blasts() {
        let mut p = ExprPool::new();
        let a = p.var("a", 8, VarKind::Input);
        let ae = p.var_expr(a);
        let sq = p.mul(ae, ae);
        let mut solver = Solver::new();
        let mut bb = BitBlaster::new();
        let _ = bb.blast(&p, sq, &mut solver);
        let clauses_first = solver.num_clauses();
        let one = p.lit(8, 1);
        let plus = p.add(sq, one);
        let _ = bb.blast(&p, plus, &mut solver);
        // Second blast reuses the multiplier: only the adder is new, which
        // is far smaller than the multiplier.
        let added = solver.num_clauses() - clauses_first;
        assert!(
            added < clauses_first / 2,
            "added {added} vs {clauses_first}"
        );
    }

    #[test]
    fn unsat_when_contradictory() {
        let mut p = ExprPool::new();
        let a = p.var("a", 8, VarKind::Input);
        let ae = p.var_expr(a);
        let c1 = p.lit(8, 3);
        let c2 = p.lit(8, 4);
        let e1 = p.eq(ae, c1);
        let e2 = p.eq(ae, c2);
        let both = p.and(e1, e2);
        let mut solver = Solver::new();
        let mut bb = BitBlaster::new();
        bb.assert_true(&p, both, &mut solver);
        assert_eq!(solver.solve(), SolveResult::Unsat);
    }

    #[test]
    fn wide_arithmetic_spot_checks() {
        // 32-bit: solve x * 3 == 9.
        let mut p = ExprPool::new();
        let x = p.var("x", 32, VarKind::Input);
        let xe = p.var_expr(x);
        let three = p.lit(32, 3);
        let nine = p.lit(32, 9);
        let prod = p.mul(xe, three);
        let eq = p.eq(prod, nine);
        let mut solver = Solver::new();
        let mut bb = BitBlaster::new();
        bb.assert_true(&p, eq, &mut solver);
        assert_eq!(solver.solve(), SolveResult::Sat);
        let xv = bb.model_var(&p, x, &solver).expect("model");
        assert_eq!(xv.to_u64().wrapping_mul(3) & 0xFFFF_FFFF, 9);
    }

    #[test]
    fn factorization_finds_witness() {
        // x * y == 143 with both factors > 1 forces {11, 13}.
        let mut p = ExprPool::new();
        let x = p.var("x", 8, VarKind::Input);
        let y = p.var("y", 8, VarKind::Input);
        let xe = p.var_expr(x);
        let ye = p.var_expr(y);
        let prod16 = {
            let xz = p.zext(xe, 16);
            let yz = p.zext(ye, 16);
            p.mul(xz, yz)
        };
        let c143 = p.lit(16, 143);
        let one = p.lit(8, 1);
        let eq = p.eq(prod16, c143);
        let xg = p.ugt(xe, one);
        let yg = p.ugt(ye, one);
        let all = p.and_all([eq, xg, yg]);
        let mut solver = Solver::new();
        let mut bb = BitBlaster::new();
        bb.assert_true(&p, all, &mut solver);
        assert_eq!(solver.solve(), SolveResult::Sat);
        let xv = bb.model_var(&p, x, &solver).expect("model").to_u64();
        let yv = bb.model_var(&p, y, &solver).expect("model").to_u64();
        assert_eq!(xv * yv, 143);
        assert!(xv > 1 && yv > 1);
    }

    #[test]
    fn interrupted_solve_leaves_encoding_reusable() {
        use aqed_sat::{ArmedBudget, Budget};
        // A budget-interrupted solve must not invalidate the shared
        // blaster/solver encoding: the solver returns at level 0, so the
        // same instance can be re-solved once the governor relents. This
        // is what lets the obligation scheduler retry with an escalated
        // budget without re-blasting.
        let mut p = ExprPool::new();
        let x = p.var("x", 16, VarKind::Input);
        let y = p.var("y", 16, VarKind::Input);
        let xe = p.var_expr(x);
        let ye = p.var_expr(y);
        let xz = p.zext(xe, 32);
        let yz = p.zext(ye, 32);
        let prod = p.mul(xz, yz);
        // 1009 * 1013: large enough that the solver cannot decide it
        // within a single conflict, small enough to decide unbudgeted.
        let semiprime = p.lit(32, 1009 * 1013);
        let one = p.lit(16, 1);
        let eq = p.eq(prod, semiprime);
        let xg = p.ugt(xe, one);
        let yg = p.ugt(ye, one);
        let all = p.and_all([eq, xg, yg]);
        let mut solver = Solver::new();
        let mut bb = BitBlaster::new();
        bb.assert_true(&p, all, &mut solver);
        let nodes_encoded = bb.cached_nodes();

        solver.set_budget(ArmedBudget::arm(&Budget::unlimited().with_max_conflicts(1)));
        assert_eq!(solver.solve(), SolveResult::Unknown);
        assert!(solver.stop_reason().is_some());

        // Lift the budget: same blaster, same solver, no re-encoding.
        solver.set_budget(ArmedBudget::unlimited());
        assert_eq!(solver.solve(), SolveResult::Sat);
        assert_eq!(bb.cached_nodes(), nodes_encoded);
        let xv = bb.model_var(&p, x, &solver).expect("model").to_u64();
        let yv = bb.model_var(&p, y, &solver).expect("model").to_u64();
        assert_eq!(xv * yv, 1009 * 1013);
        assert!(xv > 1 && yv > 1);
    }
}
